"""Ablation: closed-form vs simulation-based depth estimation.

Calibration-by-simulation is essentially unbiased but costs actual
rank-join executions per estimate; the closed forms are instantaneous.
This bench measures both accuracy and relative runtime.
"""

import time

from repro.estimation.depths import top_k_depths_average
from repro.estimation.simulate import simulated_depths
from repro.experiments.harness import measure_depths
from repro.experiments.report import format_table, relative_error

from benchmarks.conftest import emit

CARDINALITY = 4000
SELECTIVITY = 0.01
KS = (10, 50, 150)


def run_ablation():
    results = []
    for k in KS:
        truth = measure_depths(CARDINALITY, SELECTIVITY, k, seed=800 + k)
        actual = sum(truth.actual) / 2.0

        start = time.perf_counter()
        closed = top_k_depths_average(k, truth.selectivity)
        closed_time = time.perf_counter() - start

        start = time.perf_counter()
        simulated = simulated_depths(
            k, SELECTIVITY, CARDINALITY, trials=3, seed=900 + k,
        )
        simulated_time = time.perf_counter() - start

        results.append((
            k, actual,
            closed.d_left, relative_error(actual, closed.d_left),
            simulated.d_left, relative_error(actual, simulated.d_left),
            simulated_time / max(closed_time, 1e-9),
        ))
    return results


def test_ablation_simulation_vs_closed_form(run_once):
    results = run_once(run_ablation)
    emit(format_table(
        ["k", "actual", "closed form", "err", "simulated", "err",
         "sim cost (x)"],
        [[k, a, c, "%.0f%%" % (100 * ce), s, "%.0f%%" % (100 * se),
          "%.0fx" % (ratio,)]
         for k, a, c, ce, s, se, ratio in results],
        title="Ablation: closed-form vs simulation estimates "
              "(n=%d, s=%g)" % (CARDINALITY, SELECTIVITY),
    ))
    for k, actual, _c, closed_err, _s, sim_err, ratio in results:
        # Simulation is (at least) as accurate as the closed form ...
        assert sim_err <= closed_err + 0.15
        # ... but costs orders of magnitude more to evaluate.
        assert ratio > 100
