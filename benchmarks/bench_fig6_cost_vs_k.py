"""Figure 6: the effect of k on rank-join plan cost, and k*.

Paper's claim: the sort plan's cost is (almost) independent of k; the
rank-join plan's cost increases with k; the curves cross at k* (the
paper's example crosses at k* = 176 for its parameters -- ours lands in
the same order of magnitude by construction of the cost model).
"""

from repro.cost.crossover import find_k_star
from repro.cost.model import CostModel
from repro.cost.plans import rank_join_plan_cost, sort_plan_cost
from repro.experiments.report import format_table

from benchmarks.conftest import emit
from benchmarks.runner import BenchRecorder, median_seconds, rounds_of

CARDINALITY = 10000
SELECTIVITY = 1e-3
KS = (1, 25, 50, 100, 150, 200, 400, 800)


def run_figure6():
    model = CostModel()
    sort_cost = sort_plan_cost(model, CARDINALITY, CARDINALITY,
                               SELECTIVITY)
    series = [
        (k, sort_cost,
         rank_join_plan_cost(model, k, SELECTIVITY, CARDINALITY,
                             CARDINALITY))
        for k in KS
    ]
    k_star = find_k_star(model, CARDINALITY, CARDINALITY, SELECTIVITY)
    return series, k_star


def test_fig6_cost_vs_k(run_once, benchmark):
    series, k_star = run_once(run_figure6)
    recorder = BenchRecorder("fig6_cost_vs_k", params={
        "cardinality": CARDINALITY, "selectivity": SELECTIVITY,
        "ks": list(KS), "k_star": k_star,
    })
    for k, sort_cost, rank_cost in series:
        recorder.record(
            "k=%d" % (k,), median_seconds=median_seconds(benchmark),
            repeats=rounds_of(benchmark), sort_plan_cost=sort_cost,
            rank_join_plan_cost=rank_cost,
        )
    recorder.write()
    emit(format_table(
        ["k", "sort plan", "rank-join plan"],
        [[k, sc, rc] for k, sc, rc in series],
        title="Figure 6: effect of k on plan cost (n=%d, s=%g); "
              "k* = %s (paper example: 176)"
              % (CARDINALITY, SELECTIVITY, k_star),
    ))
    sort_costs = [sc for _k, sc, _rc in series]
    rank_costs = [rc for _k, _sc, rc in series]
    # Sort plan flat in k.
    assert len(set(sort_costs)) == 1
    # Rank-join plan strictly non-decreasing in k.
    assert rank_costs == sorted(rank_costs)
    # Crossover exists inside the feasible range, same order of
    # magnitude as the paper's 176.
    assert k_star is not None and 0 < k_star
    assert 10 <= k_star <= 2000
    # Below k*, rank-join is cheaper; above, the sort plan is.
    below = [rc < sc for k, sc, rc in series if k < k_star]
    above = [rc >= sc for k, sc, rc in series if k >= k_star]
    assert all(below) and all(above)
