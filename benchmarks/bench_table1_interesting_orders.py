"""Table 1: interesting order expressions collected for query Q2.

Paper's listing (10 rows) with reasons Join / Rank-join / Orderby.  The
paper's table contains typos in the pairwise rows (printing ``B.c2`` /
``C.c2`` where the Q2 ranking function reads ``B.c1`` / ``C.c1``); we
reproduce the corrected expressions.
"""

from repro.optimizer.expressions import ScoreExpression
from repro.optimizer.interesting import collect_interesting_orders
from repro.optimizer.query import JoinPredicate, RankQuery
from repro.experiments.report import format_table

from benchmarks.conftest import emit


def q2():
    return RankQuery(
        tables="ABC",
        predicates=[JoinPredicate("A.c2", "B.c1"),
                    JoinPredicate("B.c2", "C.c2")],
        ranking=ScoreExpression({"A.c1": 0.3, "B.c1": 0.3, "C.c1": 0.3}),
        k=5,
    )


def collect():
    return collect_interesting_orders(q2())


def test_table1_interesting_order_expressions(run_once):
    orders = run_once(collect)
    emit(format_table(
        ["Interesting Order Expression", "Reason"],
        [[io.expression.description(), " and ".join(io.reasons)]
         for io in orders],
        title="Table 1: interesting order expressions in query Q2",
    ))
    listing = {io.expression.description(): set(io.reasons)
               for io in orders}
    assert len(orders) == 10  # The paper's row count.
    assert listing["A.c1"] == {"Rank-join"}
    assert listing["A.c2"] == {"Join"}
    assert listing["B.c1"] == {"Join", "Rank-join"}
    assert listing["B.c2"] == {"Join"}
    assert listing["C.c1"] == {"Rank-join"}
    assert listing["C.c2"] == {"Join"}
    assert listing["0.3*A.c1 + 0.3*B.c1"] == {"Rank-join"}
    assert listing["0.3*B.c1 + 0.3*C.c1"] == {"Rank-join"}
    assert listing["0.3*A.c1 + 0.3*C.c1"] == {"Rank-join"}
    assert listing["0.3*A.c1 + 0.3*B.c1 + 0.3*C.c1"] == {"Orderby"}
