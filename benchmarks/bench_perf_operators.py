"""Raw operator performance (multi-round pytest-benchmark timings).

Unlike the figure benches (one-shot experiments), these measure
steady-state throughput of the core operators so performance
regressions in the engine are caught: HRJN top-k vs the blocking
TopK-over-join baseline, plus the depth-estimation closed form (which
the optimizer evaluates many times per enumeration).
"""

import pytest

from repro.data.generators import generate_ranked_table
from repro.estimation.depths import top_k_depths_average_streams
from repro.operators.filters import Filter
from repro.operators.hrjn import HRJN
from repro.operators.joins import HashJoin
from repro.operators.scan import IndexScan, TableScan
from repro.operators.topk import Limit, TopK
from repro.optimizer.query import FilterPredicate

from benchmarks.runner import BenchRecorder

CARDINALITY = 2000
SELECTIVITY = 0.02
K = 20
BATCH = 256


def _drain_batches(op, n=BATCH):
    """Drain an operator through ``next_batch`` (the vectorized plane)."""
    op.open()
    total = 0
    while True:
        rows = op.next_batch(n)
        total += len(rows)
        if len(rows) < n:
            break
    op.close()
    return total


@pytest.fixture(scope="module")
def tables():
    left = generate_ranked_table(
        "L", CARDINALITY, selectivity=SELECTIVITY, seed=101,
    )
    right = generate_ranked_table(
        "R", CARDINALITY, selectivity=SELECTIVITY, seed=102,
    )
    return left, right


@pytest.fixture(scope="module")
def bench_json():
    recorder = BenchRecorder("perf_operators", params={
        "cardinality": CARDINALITY, "selectivity": SELECTIVITY, "k": K,
    })
    yield recorder
    if recorder.results:
        recorder.write()


def test_perf_hrjn_topk(benchmark, tables, bench_json):
    left, right = tables

    def run():
        rank_join = HRJN(
            IndexScan(left, left.get_index("L_score_idx")),
            IndexScan(right, right.get_index("R_score_idx")),
            "L.key", "R.key", "L.score", "R.score", name="RJ",
        )
        return len(list(Limit(rank_join, K)))

    assert benchmark(run) == K
    bench_json.record_benchmark("hrjn_topk", benchmark)


def test_perf_join_then_sort_topk(benchmark, tables, bench_json):
    left, right = tables

    def run():
        join = HashJoin(
            TableScan(left), TableScan(right), "L.key", "R.key",
        )
        top = TopK(join, K, lambda r: r["L.score"] + r["R.score"],
                   description="sum")
        return len(list(top))

    assert benchmark(run) == K
    bench_json.record_benchmark("join_then_sort_topk", benchmark)


def test_perf_full_index_scan(benchmark, tables, bench_json):
    left, _right = tables

    def run():
        return sum(
            1 for _row in IndexScan(left, left.get_index("L_score_idx"))
        )

    assert benchmark(run) == CARDINALITY
    bench_json.record_benchmark("full_index_scan", benchmark)


def test_perf_index_scan_vectorized(benchmark, tables, bench_json):
    """Sorted access through ``next_batch`` slices (columnar plane)."""
    left, _right = tables

    def run():
        return _drain_batches(
            IndexScan(left, left.get_index("L_score_idx"))
        )

    assert benchmark(run) == CARDINALITY
    bench_json.record_benchmark("index_scan_vectorized", benchmark)


def test_perf_filter_row_at_a_time(benchmark, tables, bench_json):
    """Filter with only a callable predicate: the row-at-a-time floor."""
    left, _right = tables
    expected = sum(1 for row in left.rows() if row["L.score"] >= 0.5)

    def run():
        scan = TableScan(left)
        op = Filter(scan, lambda row: row["L.score"] >= 0.5,
                    description="L.score >= 0.5")
        return sum(1 for _row in op)

    assert benchmark(run) == expected
    bench_json.record_benchmark("filter_row_at_a_time", benchmark)


def test_perf_filter_vectorized(benchmark, tables, bench_json):
    """Same selection, fused over raw columns (compiled + numpy mask)."""
    left, _right = tables
    expected = sum(1 for row in left.rows() if row["L.score"] >= 0.5)
    predicates = (FilterPredicate("L.score", ">=", 0.5),)

    def run():
        scan = TableScan(left)
        op = Filter(scan, lambda row: row["L.score"] >= 0.5,
                    description="L.score >= 0.5", predicates=predicates)
        return _drain_batches(op)

    assert benchmark(run) == expected
    bench_json.record_benchmark("filter_vectorized", benchmark)


def test_perf_depth_estimate(benchmark, bench_json):
    def run():
        estimate = top_k_depths_average_streams(
            K, SELECTIVITY, CARDINALITY, l=2, r=1,
            m_left=40000, m_right=CARDINALITY,
        )
        return estimate.d_left

    assert benchmark(run) > 0
    bench_json.record_benchmark("depth_estimate", benchmark)
