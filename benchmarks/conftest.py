"""Shared helpers for the figure/table reproduction benchmarks.

Every ``bench_*`` module reproduces one artifact of the paper's
evaluation.  Each test uses ``benchmark.pedantic(..., rounds=1)`` so
``pytest benchmarks/ --benchmark-only`` runs each experiment exactly
once, records its wall-clock, prints the paper-style table, and asserts
the *shape* the paper reports (who wins, by what factor, where the
crossover falls) -- absolute numbers differ by design because the
substrate is a simulator.
"""

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run ``fn`` exactly once under the benchmark timer."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner


def emit(text):
    """Print a result table (visible with ``pytest -s`` or in captured
    output on failure)."""
    print("\n" + text)
