"""Shared helpers for the figure/table reproduction benchmarks.

Every ``bench_*`` module reproduces one artifact of the paper's
evaluation.  Each test uses ``benchmark.pedantic(..., rounds=1)`` so
``pytest benchmarks/ --benchmark-only`` runs each experiment exactly
once, records its wall-clock, prints the paper-style table, and asserts
the *shape* the paper reports (who wins, by what factor, where the
crossover falls) -- absolute numbers differ by design because the
substrate is a simulator.
"""

from time import perf_counter

import pytest


@pytest.fixture(autouse=True)
def _median_fallback(benchmark):
    """Stash a ``perf_counter`` fallback on every benchmark run.

    When pytest-benchmark's own stats are unavailable
    (``--benchmark-disable``, plugin knocked out) the function under
    test still runs exactly once, so the elapsed wall-clock *is* a real
    single-round timing; :func:`benchmarks.runner.median_seconds` falls
    back to it instead of recording ``null`` -- committed
    ``BENCH_*.json`` trajectories always carry real medians.  Wrapping
    the instance's dispatch targets (``_raw`` / ``_raw_pedantic``)
    keeps the fixture object itself a ``BenchmarkFixture``, which the
    plugin's report hook type-checks.
    """

    def timed(inner):
        def wrapper(*args, **kwargs):
            started = perf_counter()
            result = inner(*args, **kwargs)
            benchmark._median_fallback = perf_counter() - started
            return result

        return wrapper

    benchmark._raw = timed(benchmark._raw)
    benchmark._raw_pedantic = timed(benchmark._raw_pedantic)


@pytest.fixture
def run_once(benchmark):
    """Run ``fn`` exactly once under the benchmark timer."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner


def emit(text):
    """Print a result table (visible with ``pytest -s`` or in captured
    output on failure)."""
    print("\n" + text)
