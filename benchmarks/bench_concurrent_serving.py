"""Concurrent serving: latency shaping under a mixed workload.

The workload is one expensive batch-class query (the Figure 6 shape
at ``k=40``) plus a fleet of cheap interactive ones (``k=5``), all
arriving together.  Two cases execute the identical query set:

* ``serial`` -- a single-queue engine: the expensive query runs first
  and every interactive query waits behind it (the worst case a
  convoy can produce; per-query latency is measured from workload
  arrival);
* ``scheduled`` -- the same queries through :class:`repro.server.Server`:
  admission classes the fleet ``interactive``, the scheduler preempts
  the expensive query at instalment boundaries (checkpoint
  suspend/resume), and the fleet completes first.

Each case records median wall-clock plus ``p50_seconds`` /
``p99_seconds`` per-query latency and ``qps``; the scheduled case
also records observed ``preemptions``.  One engine does the same
total work either way, so the headline is *latency shaping*, not
throughput: the recorder params carry
``interactive_p99_speedup`` (serial over scheduled interactive p99).

Results land in ``BENCH_concurrent_serving.json``.  Run standalone
(CI smoke uses ``--repeats 1``)::

    python -m benchmarks.bench_concurrent_serving --repeats 3
"""

import argparse
import asyncio
import statistics
import sys
from time import perf_counter

from repro.common.rng import make_rng
from repro.executor.database import Database
from repro.optimizer.enumerator import OptimizerConfig
from repro.server import AdmissionPolicy, SchedulerConfig, Server

from benchmarks.runner import BenchRecorder

ROWS = 400
DOMAIN = 15
INTERACTIVE_CLIENTS = 8

CHEAP_SQL = """
WITH Ranked AS (
  SELECT A.c1 AS x, B.c2 AS y,
         rank() OVER (ORDER BY (0.3*A.c1 + 0.7*B.c2)) AS rank
  FROM A, B WHERE A.c2 = B.c1)
SELECT x, y, rank FROM Ranked WHERE rank <= 5
"""

#: The same shape at k=40: the expensive, batch-class convoy head.
EXPENSIVE_SQL = CHEAP_SQL.replace("rank <= 5", "rank <= 40")

#: Classes the k=40 plan (cost ~282) batch, the k=5 fleet (~102)
#: interactive.
INTERACTIVE_COST = 150.0

#: Small instalments so the expensive query is preempted quickly.
INSTALMENT_PULLS = 30


def build_db(rows=ROWS, seed=3):
    rng = make_rng(seed)
    # HRJN only: instalment preemption needs a pipelined rank join.
    db = Database(config=OptimizerConfig(enable_nrjn=False))
    db.create_table("A", [("c1", "float"), ("c2", "int")], rows=[
        [float(rng.uniform(0, 1)), int(rng.integers(0, DOMAIN))]
        for _ in range(rows)
    ])
    db.create_table("B", [("c1", "int"), ("c2", "float")], rows=[
        [int(rng.integers(0, DOMAIN)), float(rng.uniform(0, 1))]
        for _ in range(rows)
    ])
    db.analyze()
    return db


def percentile(latencies, fraction):
    ordered = sorted(latencies)
    index = min(len(ordered) - 1,
                max(0, round(fraction * (len(ordered) - 1))))
    return ordered[index]


def run_serial(db):
    """Single queue: expensive first, the fleet convoyed behind it.

    Returns ``(wall_seconds, all_latencies, interactive_latencies)``
    with every latency measured from workload arrival.
    """
    started = perf_counter()
    latencies = []
    db.execute_guarded(EXPENSIVE_SQL)
    latencies.append(perf_counter() - started)
    interactive = []
    for _ in range(INTERACTIVE_CLIENTS):
        db.execute_guarded(CHEAP_SQL)
        interactive.append(perf_counter() - started)
    latencies.extend(interactive)
    return perf_counter() - started, latencies, interactive


def run_scheduled(db):
    """The same workload through the server's instalment scheduler.

    Returns ``(wall_seconds, all_latencies, interactive_latencies,
    preemptions)``.
    """

    async def workload():
        server = Server(
            db,
            admission=AdmissionPolicy(interactive_cost=INTERACTIVE_COST,
                                      high_water=64),
            scheduler=SchedulerConfig(instalment_pulls=INSTALMENT_PULLS),
        )
        async with server:
            expensive = await server.submit(EXPENSIVE_SQL,
                                            tenant="analytics")
            # Let the expensive query start its first instalment so
            # the fleet's arrival preempts it (the convoy scenario).
            await asyncio.sleep(0)
            fleet = [
                await server.submit(CHEAP_SQL, tenant="dash-%d" % i)
                for i in range(INTERACTIVE_CLIENTS)
            ]
            sessions = [expensive] + fleet
            await asyncio.gather(*(s.result() for s in sessions))
        return expensive, fleet

    started = perf_counter()
    expensive, fleet = asyncio.run(workload())
    wall = perf_counter() - started
    latencies = [s.stats["latency_seconds"] for s in [expensive] + fleet]
    interactive = [s.stats["latency_seconds"] for s in fleet]
    preemptions = sum(
        s.stats["preemptions"] for s in [expensive] + fleet)
    return wall, latencies, interactive, preemptions


def run(repeats=3, out_dir=None):
    """Run both cases and write ``BENCH_concurrent_serving.json``."""
    recorder = BenchRecorder("concurrent_serving", params={
        "rows": ROWS, "interactive_clients": INTERACTIVE_CLIENTS,
        "sessions": INTERACTIVE_CLIENTS + 1,
        "instalment_pulls": INSTALMENT_PULLS,
        "interactive_cost": INTERACTIVE_COST,
    })
    db = build_db()
    # Warm the plan cache so neither case pays first-run optimization.
    db.execute(CHEAP_SQL)
    db.execute(EXPENSIVE_SQL)

    walls, pooled, pooled_interactive = [], [], []
    for _ in range(max(1, repeats)):
        wall, latencies, interactive = run_serial(db)
        walls.append(wall)
        pooled.extend(latencies)
        pooled_interactive.extend(interactive)
    serial_wall = statistics.median(walls)
    serial_interactive_p99 = percentile(pooled_interactive, 0.99)
    queries = INTERACTIVE_CLIENTS + 1
    recorder.record(
        "serial", median_seconds=serial_wall, repeats=repeats,
        p50_seconds=percentile(pooled, 0.5),
        p99_seconds=percentile(pooled, 0.99),
        interactive_p50_seconds=percentile(pooled_interactive, 0.5),
        interactive_p99_seconds=serial_interactive_p99,
        qps=queries / serial_wall,
    )

    walls, pooled, pooled_interactive = [], [], []
    preemptions_total = 0
    for _ in range(max(1, repeats)):
        wall, latencies, interactive, preemptions = run_scheduled(db)
        walls.append(wall)
        pooled.extend(latencies)
        pooled_interactive.extend(interactive)
        preemptions_total += preemptions
    scheduled_wall = statistics.median(walls)
    scheduled_interactive_p99 = percentile(pooled_interactive, 0.99)
    recorder.record(
        "scheduled", median_seconds=scheduled_wall, repeats=repeats,
        p50_seconds=percentile(pooled, 0.5),
        p99_seconds=percentile(pooled, 0.99),
        interactive_p50_seconds=percentile(pooled_interactive, 0.5),
        interactive_p99_seconds=scheduled_interactive_p99,
        qps=queries / scheduled_wall,
        preemptions=preemptions_total,
    )

    speedup = serial_interactive_p99 / scheduled_interactive_p99
    recorder.params["interactive_p99_speedup"] = round(speedup, 2)
    recorder.params["preemptions"] = preemptions_total
    path = recorder.write(out_dir)
    return path, speedup, preemptions_total


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="benchmarks.bench_concurrent_serving",
        description="Mixed-workload latency: serial vs scheduled",
    )
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed repetitions per case (default 3)")
    parser.add_argument("--out-dir", default=None,
                        help="output directory (default: repo root, or "
                             "$BENCH_OUT_DIR)")
    args = parser.parse_args(argv)
    path, speedup, preemptions = run(repeats=args.repeats,
                                     out_dir=args.out_dir)
    print("wrote %s" % (path,))
    print("interactive p99, serial vs scheduled: %.1fx" % (speedup,))
    print("preemptions observed: %d" % (preemptions,))
    return 0


if __name__ == "__main__":
    sys.exit(main())
