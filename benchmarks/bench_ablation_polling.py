"""Ablation: HRJN input-polling strategy vs consumed depth.

HRJN must decide which input to poll at each step (Section 2.2: "the
algorithm decides which input to poll depending on different
strategies").  We compare round-robin against the threshold-guided
strategy (poll the input responsible for the larger threshold term) and
the degenerate one-sided strategies.
"""

from repro.experiments.harness import make_ranked_pair
from repro.experiments.report import format_table
from repro.operators.hrjn import HRJN, POLL_STRATEGIES
from repro.operators.scan import IndexScan
from repro.operators.topk import Limit

from benchmarks.conftest import emit

CARDINALITY = 6000
SELECTIVITY = 0.01
K = 50


def run_ablation():
    results = []
    for strategy in POLL_STRATEGIES:
        left, right = make_ranked_pair(CARDINALITY, SELECTIVITY, seed=9)
        rank_join = HRJN(
            IndexScan(left, left.get_index("L_score_idx")),
            IndexScan(right, right.get_index("R_score_idx")),
            "L.key", "R.key", "L.score", "R.score",
            strategy=strategy, name="RJ",
        )
        rows = list(Limit(rank_join, K))
        results.append((
            strategy, rank_join.depths[0], rank_join.depths[1],
            sum(rank_join.depths), rank_join.stats.max_buffer,
            round(rows[0]["_score_RJ"], 6),
        ))
    return results


def test_ablation_polling_strategy(run_once):
    results = run_once(run_ablation)
    emit(format_table(
        ["strategy", "dL", "dR", "total depth", "max buffer",
         "top score"],
        [list(r) for r in results],
        title="Ablation: HRJN polling strategy (n=%d, s=%g, k=%d)"
              % (CARDINALITY, SELECTIVITY, K),
    ))
    by_name = {r[0]: r for r in results}
    # All strategies return the same top-1 score (correctness does not
    # depend on polling).
    assert len({r[5] for r in results}) == 1
    # The threshold strategy consumes no more than round-robin
    # (modulo a small slack for discrete polling).
    assert by_name["threshold"][3] <= by_name["alternate"][3] + 10
    # One-sided polling still terminates but over-consumes its side.
    assert by_name["left"][1] >= by_name["alternate"][1]
