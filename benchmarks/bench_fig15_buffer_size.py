"""Figure 15: estimating the buffer size of a rank-join operator.

Paper's claims: the measured buffer size stays below the upper bound
``d1 * d2 * s`` computed from the *measured* depths ("actual
upper-bound"), which in turn is tracked by the bound computed from the
*estimated* top-k depths ("estimated upper-bound") with error below
~40%; the gap between the actual buffer and the bounds widens with k
(the worst case becomes ever less likely).
"""

from repro.experiments.harness import measure_depths
from repro.experiments.report import format_table, relative_error

from benchmarks.conftest import emit

CARDINALITY = 8000
SELECTIVITY = 0.01
# k values large enough that the expected-value bound d1*d2*s is not
# swamped by Poisson noise in the consumed prefix.
KS = (25, 50, 100, 200, 400)

ERROR_BOUND = 1.0  # Paper: <40% between the two upper bounds; we
# allow up to 100% because our worst-case depths are analytic bounds,
# not fitted -- the *shape* assertions below are the reproduction.


def run_figure15():
    return [
        measure_depths(CARDINALITY, SELECTIVITY, k, seed=500 + k)
        for k in KS
    ]


def test_fig15_buffer_size(run_once):
    measurements = run_once(run_figure15)
    rows = []
    for m in measurements:
        rows.append([
            m.k, m.buffer_actual, m.buffer_actual_bound,
            m.buffer_estimated_bound,
            "%.0f%%" % (100 * relative_error(
                m.buffer_actual_bound, m.buffer_estimated_bound,),),
        ])
    emit(format_table(
        ["k", "actual buffer", "actual upper-bound",
         "estimated upper-bound", "bound err"],
        rows,
        title="Figure 15: rank-join buffer size vs bounds "
              "(n=%d, s=%g)" % (CARDINALITY, SELECTIVITY),
    ))
    gaps = []
    for m in measurements:
        # The measured buffer respects the measured-depth bound (the
        # bound is an expectation, so allow sampling noise headroom).
        assert m.buffer_actual <= m.buffer_actual_bound * 1.3
        # The estimated bound dominates (it uses worst-case depths).
        assert m.buffer_actual_bound <= m.buffer_estimated_bound * 1.1
        assert relative_error(
            m.buffer_actual_bound, m.buffer_estimated_bound,
        ) <= ERROR_BOUND
        gaps.append(m.buffer_estimated_bound - m.buffer_actual)
    # The gap between actual buffer and upper bound widens with k.
    assert gaps[-1] > gaps[0]
