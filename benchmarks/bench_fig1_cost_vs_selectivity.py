"""Figure 1: estimated I/O cost of the two ranking plans vs selectivity.

Paper's claim: for low join selectivity the traditional join-then-sort
plan is cheaper; for higher selectivity the rank-join plan wins.
"""

from repro.cost.model import CostModel
from repro.cost.plans import rank_join_plan_cost, sort_plan_cost
from repro.experiments.report import format_table

from benchmarks.conftest import emit

CARDINALITY = 10000
K = 100
SELECTIVITIES = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1)


def run_figure1():
    model = CostModel()
    rows = []
    for selectivity in SELECTIVITIES:
        sort_cost = sort_plan_cost(model, CARDINALITY, CARDINALITY,
                                   selectivity)
        rank_cost = rank_join_plan_cost(model, K, selectivity,
                                        CARDINALITY, CARDINALITY)
        winner = "rank-join" if rank_cost < sort_cost else "sort"
        rows.append((selectivity, sort_cost, rank_cost, winner))
    return rows


def test_fig1_cost_vs_selectivity(run_once):
    rows = run_once(run_figure1)
    emit(format_table(
        ["selectivity", "sort plan", "rank-join plan", "winner"],
        [["%.0e" % s, sc, rc, w] for s, sc, rc, w in rows],
        title="Figure 1: estimated cost of two ranking plans "
              "(n=%d, k=%d)" % (CARDINALITY, K),
    ))
    winners = [w for _s, _sc, _rc, w in rows]
    # Shape: sort wins at the low-selectivity end ...
    assert winners[0] == "sort"
    # ... rank-join wins at the high end ...
    assert winners[-1] == "rank-join"
    # ... with a single crossover in between.
    flips = sum(1 for a, b in zip(winners, winners[1:]) if a != b)
    assert flips == 1
    # Sort-plan cost grows with selectivity (more results to sort),
    # rank-join cost shrinks (shallower depths).
    sort_costs = [sc for _s, sc, _rc, _w in rows]
    rank_costs = [rc for _s, _sc, rc, _w in rows]
    assert sort_costs == sorted(sort_costs)
    assert rank_costs == sorted(rank_costs, reverse=True)
