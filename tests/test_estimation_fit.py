"""Unit tests for catalog-driven depth estimation."""

import pytest

from repro.common.errors import EstimationError
from repro.data.generators import generate_ranked_table
from repro.estimation.fit import estimate_depths_from_catalog, fitted_slab
from repro.experiments.harness import realized_selectivity
from repro.operators.hrjn import HRJN
from repro.operators.scan import IndexScan
from repro.operators.topk import Limit
from repro.storage.catalog import Catalog


def make_catalog(n=4000, selectivity=0.01, seed=31):
    catalog = Catalog()
    left = generate_ranked_table("L", n, selectivity=selectivity,
                                 seed=seed)
    right = generate_ranked_table("R", n, selectivity=selectivity,
                                  seed=seed + 1)
    catalog.register(left)
    catalog.register(right)
    catalog.analyze()
    # Pin the true selectivity, as the paper assumes.
    catalog.set_join_selectivity(
        "L.key", "R.key",
        realized_selectivity(left, right, "L.key", "R.key"),
    )
    return catalog


class TestFittedSlab:
    def test_uniform_scores_slab(self):
        catalog = make_catalog(n=2000)
        slab = fitted_slab(catalog, "L", "L.score")
        # Uniform [0, 1] over 2000 rows: slab ~ 1/2000.
        assert slab == pytest.approx(1 / 2000, rel=0.2)

    def test_non_numeric_column_rejected(self):
        from repro.storage.table import Table

        catalog = Catalog()
        table = Table.from_columns("T", [("name", "str")])
        table.insert(["x"])
        table.insert(["y"])
        catalog.register(table)
        with pytest.raises(EstimationError, match="slab"):
            fitted_slab(catalog, "T", "T.name")


class TestCatalogEstimation:
    def test_tracks_measured_depth(self):
        catalog = make_catalog()
        k = 50
        estimate = estimate_depths_from_catalog(
            catalog, "L", "L.score", "R", "R.score",
            "L.key", "R.key", k,
        )
        left = catalog.table("L")
        right = catalog.table("R")
        rank_join = HRJN(
            IndexScan(left, left.get_index("L_score_idx")),
            IndexScan(right, right.get_index("R_score_idx")),
            "L.key", "R.key", "L.score", "R.score", name="RJ",
        )
        list(Limit(rank_join, k))
        actual = sum(rank_join.depths) / 2.0
        # The fitted worst-case estimate bounds the measurement within
        # the usual factor-of-two band.
        assert actual * 0.5 <= estimate.d_left <= actual * 2.5

    def test_clamped_at_cardinality(self):
        catalog = make_catalog(n=200)
        estimate = estimate_depths_from_catalog(
            catalog, "L", "L.score", "R", "R.score",
            "L.key", "R.key", 10 ** 6,
        )
        assert estimate.d_left <= 200

    def test_invalid_k(self):
        catalog = make_catalog(n=100)
        with pytest.raises(EstimationError):
            estimate_depths_from_catalog(
                catalog, "L", "L.score", "R", "R.score",
                "L.key", "R.key", 0,
            )
