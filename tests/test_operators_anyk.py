"""Unit tests for the any-k DP enumeration operator.

Correctness against brute force on hand-built trees, the ranked-stream
contract (non-increasing scores, no duplicate answers) as a hypothesis
property over *random acyclic join graphs*, and constructor
validation.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ExecutionError
from repro.common.rng import make_rng
from repro.operators.anyk import AnyK, AnyKNode
from repro.operators.scan import TableScan
from repro.storage.table import Table


def make_table(name, rows):
    """``rows`` is a list of ``(ka, kb, score)`` triples."""
    table = Table.from_columns(name, [
        ("id", "int"), ("ka", "int"), ("kb", "int"),
        ("score", "float"),
    ])
    for i, (ka, kb, score) in enumerate(rows):
        table.insert([i, int(ka), int(kb), float(score)])
    return table


def build_operator(tables, edges):
    """``edges[i] = (parent, child_col, parent_col)`` for node i+1."""
    nodes = [AnyKNode(0, None,
                      score_weights=[("%s.score" % tables[0].name, 1.0)])]
    for index, (parent, child_column, parent_column) in enumerate(edges):
        child_name = tables[index + 1].name
        nodes.append(AnyKNode(
            index + 1, parent,
            key="%s.%s" % (child_name, child_column),
            parent_key="%s.%s" % (tables[parent].name, parent_column),
            score_weights=[("%s.score" % child_name, 1.0)],
        ))
    return AnyK([TableScan(table) for table in tables], nodes,
                name="AK")


def brute_force(tables, edges):
    """All join answers as ``{id-tuple: score}`` (sum of scores)."""
    answers = {}
    all_rows = [list(table.scan()) for table in tables]
    for combo in itertools.product(*all_rows):
        ok = True
        for index, (parent, child_column, parent_column) in \
                enumerate(edges):
            child_row = combo[index + 1]
            parent_row = combo[parent]
            child_name = tables[index + 1].name
            parent_name = tables[parent].name
            if (child_row["%s.%s" % (child_name, child_column)]
                    != parent_row["%s.%s" % (parent_name,
                                             parent_column)]):
                ok = False
                break
        if ok:
            ids = tuple(row["%s.id" % table.name]
                        for table, row in zip(tables, combo))
            answers[ids] = sum(
                row["%s.score" % table.name]
                for table, row in zip(tables, combo)
            )
    return answers


def drain(operator):
    operator.open()
    try:
        rows = []
        while True:
            row = operator.next()
            if row is None:
                return rows
            rows.append(row)
    finally:
        operator.close()


def seeded_rows(n, domain, seed):
    rng = make_rng(seed)
    return [(int(rng.integers(0, domain)), int(rng.integers(0, domain)),
             float(rng.uniform(0, 1))) for _ in range(n)]


class TestCorrectness:
    def tree(self):
        tables = [make_table("T%d" % i, seeded_rows(12, 3, seed=i + 1))
                  for i in range(4)]
        # A genuine multi-key tree: T1 under T0 on ka, T2 under T1 on
        # kb, T3 under T0 on kb -- chain and star edges mixed.
        edges = [(0, "ka", "ka"), (1, "kb", "kb"), (0, "kb", "kb")]
        return tables, edges

    def test_matches_brute_force(self):
        tables, edges = self.tree()
        operator = build_operator(tables, edges)
        rows = drain(operator)
        expected = brute_force(tables, edges)
        ids = [tuple(row["T%d.id" % i] for i in range(4))
               for row in rows]
        assert sorted(ids) == sorted(expected)
        for row, answer in zip(rows, ids):
            assert row[operator.output_score_column] == pytest.approx(
                expected[answer]
            )

    def test_scores_non_increasing_bitwise(self):
        tables, edges = self.tree()
        operator = build_operator(tables, edges)
        rows = drain(operator)
        scores = [row[operator.output_score_column] for row in rows]
        assert all(a >= b for a, b in zip(scores, scores[1:]))

    def test_no_duplicates(self):
        tables, edges = self.tree()
        rows = drain(build_operator(tables, edges))
        ids = [tuple(row["T%d.id" % i] for i in range(4))
               for row in rows]
        assert len(ids) == len(set(ids))

    def test_empty_join_yields_nothing(self):
        left = make_table("T0", [(0, 0, 0.5)])
        right = make_table("T1", [(1, 1, 0.5)])
        operator = build_operator([left, right], [(0, "ka", "ka")])
        assert drain(operator) == []


class TestValidation:
    def test_root_with_keys_rejected(self):
        with pytest.raises(ExecutionError):
            AnyKNode(0, None, key="T0.ka", parent_key="T0.ka")

    def test_non_root_without_keys_rejected(self):
        with pytest.raises(ExecutionError):
            AnyKNode(1, 0)

    def test_parent_must_precede_child(self):
        table = make_table("T0", [(0, 0, 0.5)])
        other = make_table("T1", [(0, 0, 0.5)])
        nodes = [
            AnyKNode(0, None),
            AnyKNode(1, 1, key="T1.ka", parent_key="T1.ka"),
        ]
        with pytest.raises(ExecutionError):
            AnyK([TableScan(table), TableScan(other)], nodes)

    def test_children_must_be_permuted_exactly_once(self):
        table = make_table("T0", [(0, 0, 0.5)])
        other = make_table("T1", [(0, 0, 0.5)])
        nodes = [
            AnyKNode(0, None),
            AnyKNode(0, 0, key="T0.ka", parent_key="T0.ka"),
        ]
        with pytest.raises(ExecutionError):
            AnyK([TableScan(table), TableScan(other)], nodes)

    def test_at_least_two_children(self):
        table = make_table("T0", [(0, 0, 0.5)])
        with pytest.raises(ExecutionError):
            AnyK([TableScan(table)], [AnyKNode(0, None)])


@st.composite
def random_join_tree(draw):
    """A random acyclic join graph: tables, edges, and row data."""
    m = draw(st.integers(2, 4))
    edges = []
    for child in range(1, m):
        parent = draw(st.integers(0, child - 1))
        child_column = draw(st.sampled_from(["ka", "kb"]))
        parent_column = draw(st.sampled_from(["ka", "kb"]))
        edges.append((parent, child_column, parent_column))
    row_lists = [
        draw(st.lists(
            st.tuples(st.integers(0, 2), st.integers(0, 2),
                      st.floats(0, 1, width=16)),
            min_size=1, max_size=8))
        for _ in range(m)
    ]
    return edges, row_lists


@settings(max_examples=40, deadline=None)
@given(random_join_tree())
def test_ranked_stream_property(tree):
    """Non-increasing scores, no duplicates, complete answer set --
    for arbitrary acyclic join graphs and inputs."""
    edges, row_lists = tree
    tables = [make_table("T%d" % i, rows)
              for i, rows in enumerate(row_lists)]
    operator = build_operator(tables, edges)
    rows = drain(operator)
    expected = brute_force(tables, edges)
    scores = [row[operator.output_score_column] for row in rows]
    assert all(a >= b for a, b in zip(scores, scores[1:]))
    ids = [tuple(row["T%d.id" % i] for i in range(len(tables)))
           for row in rows]
    assert len(ids) == len(set(ids))
    assert sorted(ids) == sorted(expected)
    for answer, score in zip(ids, scores):
        assert score == pytest.approx(expected[answer])
