"""Execution guards: resource budgets, depth limits, adaptive recovery.

Covers the robustness layer's contract: budget breaches raise
``BudgetExceededError`` carrying partial operator snapshots, and a
query whose selectivity estimate is wrong by 4x (the
``bench_robustness.py`` setup) either completes under re-estimated
budgets or falls back to the blocking sort plan -- with the path
recorded in the report.
"""

import pytest

from repro.common.errors import (
    BudgetExceededError,
    DepthOverrunError,
    ExecutionError,
)
from repro.common.rng import make_rng
from repro.executor.database import Database
from repro.operators.hrjn import HRJN
from repro.operators.scan import IndexScan
from repro.operators.topk import Limit
from repro.optimizer.plans import RankJoinPlan
from repro.robustness.budget import ExecutionGuard, ResourceBudget
from repro.robustness.recovery import GuardedExecutor, RecoveryPolicy

SQL = """
WITH Ranked AS (
  SELECT A.c1 AS x, B.c2 AS y,
         rank() OVER (ORDER BY (0.3*A.c1 + 0.7*B.c2)) AS rank
  FROM A, B WHERE A.c2 = B.c1)
SELECT x, y, rank FROM Ranked WHERE rank <= 5
"""


def make_db(rows=400, seed=3, domain=15):
    rng = make_rng(seed)
    db = Database()
    db.create_table("A", [("c1", "float"), ("c2", "int")], rows=[
        [float(rng.uniform(0, 1)), int(rng.integers(0, domain))]
        for _ in range(rows)
    ])
    db.create_table("B", [("c1", "int"), ("c2", "float")], rows=[
        [int(rng.integers(0, domain)), float(rng.uniform(0, 1))]
        for _ in range(rows)
    ])
    db.analyze()
    return db


def ranking_scores(report):
    return [round(0.3 * r["A.c1"] + 0.7 * r["B.c2"], 9)
            for r in report.rows]


def hand_built_rank_join(db, strategy="alternate"):
    a = db.catalog.table("A")
    b = db.catalog.table("B")
    return HRJN(
        IndexScan(a, a.find_index_on("A.c1")),
        IndexScan(b, b.find_index_on("B.c2")),
        "A.c2", "B.c1", "A.c1", "B.c2", strategy=strategy,
    )


class FakeClock:
    """Deterministic monotonic clock advancing ``step`` per reading."""

    def __init__(self, step=0.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        self.now += self.step
        return self.now


class TestResourceBudget:
    def test_rejects_negative_limits(self):
        with pytest.raises(ExecutionError):
            ResourceBudget(max_pulls=-1)
        with pytest.raises(ExecutionError):
            ResourceBudget(deadline_seconds=-0.5)

    def test_unlimited_and_describe(self):
        assert ResourceBudget().unlimited
        budget = ResourceBudget(max_pulls=10, deadline_seconds=1.5)
        assert not budget.unlimited
        assert "max_pulls=10" in budget.describe()
        assert "deadline=1.5s" in budget.describe()


class TestBudgetEnforcement:
    def test_pull_budget_breach_raises_with_snapshots(self):
        db = make_db()
        with pytest.raises(BudgetExceededError) as info:
            db.execute(SQL, budget=ResourceBudget(max_pulls=5))
        error = info.value
        assert error.budget.max_pulls == 5
        assert error.snapshots, "partial instrumentation missing"
        # The partial snapshots reflect work done up to the breach.
        assert sum(sum(s.pulled) for s in error.snapshots) <= 5 + 5

    def test_buffer_budget_breach(self):
        db = make_db()
        with pytest.raises(BudgetExceededError, match="buffer occupancy"):
            db.execute(SQL, budget=ResourceBudget(max_buffer=1))

    def test_deadline_breach_with_fake_clock(self, small_table):
        scan = IndexScan(small_table, small_table.get_index("T_score_idx"))
        root = Limit(scan, 5)
        clock = FakeClock(step=1.0)
        guard = ExecutionGuard(
            ResourceBudget(deadline_seconds=2.0), clock=clock,
        ).attach(root)
        guard.start()
        with pytest.raises(BudgetExceededError, match="deadline"):
            list(root)

    def test_deadline_error_carries_partial_snapshots(self):
        db = make_db()
        with pytest.raises(BudgetExceededError) as info:
            db.execute(SQL, budget=ResourceBudget(deadline_seconds=0.0))
        assert isinstance(info.value.snapshots, list)

    def test_operators_closed_after_budget_breach(self, small_table):
        scan = IndexScan(small_table, small_table.get_index("T_score_idx"))
        root = Limit(scan, 100)
        ExecutionGuard(ResourceBudget(max_pulls=3)).attach(root).start()
        with pytest.raises(BudgetExceededError):
            list(root)
        assert all(not op._opened for op in root.walk())

    def test_budget_within_limits_is_transparent(self):
        db = make_db()
        unguarded = db.execute(SQL)
        guarded = db.execute(
            SQL, budget=ResourceBudget(max_pulls=100000, max_buffer=100000,
                                       deadline_seconds=600),
        )
        assert ranking_scores(guarded) == ranking_scores(unguarded)


class TestExecutionGuard:
    def test_attach_detach_round_trip(self, small_table):
        scan = IndexScan(small_table, small_table.get_index("T_score_idx"))
        guard = ExecutionGuard(ResourceBudget(max_pulls=100)).attach(scan)
        assert scan._guard is guard
        assert scan.stats.guard is guard
        guard.detach()
        assert scan._guard is None
        assert scan.stats.guard is None

    def test_depth_limit_raises_recoverable_overrun(self, small_table):
        db = make_db(rows=50)
        join = hand_built_rank_join(db)
        guard = ExecutionGuard().attach(join)
        guard.set_depth_limit(join, (3, None))
        with pytest.raises(DepthOverrunError) as info:
            list(join)
        assert info.value.operator is join
        assert info.value.child_index == 0
        assert info.value.limit == 3
        # The overrun fired *before* the fourth pull: no tuple lost.
        assert join.stats.pulled[0] == 3

    def test_overrun_is_resumable_mid_query(self):
        """Raising before the pull keeps the tree consistent, so the
        very same in-flight execution can continue after the limit is
        raised -- the property adaptive recovery is built on."""
        db = make_db(rows=80)
        reference = [r[join_score_column] for r in
                     _drain(hand_built_rank_join(db), 10)]
        join = hand_built_rank_join(db)
        guard = ExecutionGuard().attach(join)
        guard.set_depth_limit(join, (4, 4))
        rows = []
        join.open()
        try:
            while len(rows) < 10:
                try:
                    row = join.next()
                except DepthOverrunError:
                    limits = guard.depth_limits[id(join)]
                    guard.set_depth_limit(
                        join, [lim * 4 for lim in limits],
                    )
                    continue
                if row is None:
                    break
                rows.append(row[join_score_column])
        finally:
            join.close()
        assert rows == reference


#: Output score column of the hand-built HRJN (default naming).
join_score_column = "_score_HRJN"


def _drain(join, k):
    return list(Limit(join, k))


class TestAdaptiveRecovery:
    def _wrong_selectivity_db(self, factor=4.0):
        """The bench_robustness setup: assumed selectivity off by 4x."""
        db = make_db()
        real = db.catalog.join_selectivity("A", "A.c2", "B", "B.c1")
        db.set_join_selectivity("A.c2", "B.c1", min(1.0, real * factor))
        return db

    def test_direct_path_recorded_when_estimates_hold(self):
        db = make_db()
        report = db.execute_guarded(SQL)
        assert report.recovery is not None
        assert report.recovery.path == "direct"
        assert report.recovery.events == []

    def test_4x_misestimate_recovers_and_matches_reference(self):
        reference = ranking_scores(make_db().execute(SQL))
        db = self._wrong_selectivity_db(4.0)
        report = db.execute_guarded(
            SQL, policy=RecoveryPolicy(overrun_factor=1.1, min_headroom=4),
        )
        # Acceptance: either completes within the re-estimated budget
        # or falls back to the sort plan -- and the report records
        # which path was taken.
        assert report.recovery.path in ("reestimated", "fallback")
        assert report.recovery.events
        assert ranking_scores(report) == reference

    def test_reestimate_event_reports_observed_selectivity(self):
        db = self._wrong_selectivity_db(4.0)
        report = db.execute_guarded(
            SQL, policy=RecoveryPolicy(overrun_factor=1.1, min_headroom=4),
        )
        event = report.recovery.events[0]
        assert event.kind in ("reestimate", "fallback")
        # The observation should land near the true selectivity and
        # far from the 4x-wrong assumption.
        assert event.observed_selectivity < event.assumed_selectivity / 2

    def test_forced_fallback_path_matches_reference(self):
        reference = ranking_scores(make_db().execute(SQL))
        db = self._wrong_selectivity_db(4.0)
        report = db.execute_guarded(
            SQL, policy=RecoveryPolicy(overrun_factor=1.1, min_headroom=4,
                                       max_reestimates=0),
        )
        assert report.recovery.path == "fallback"
        assert ranking_scores(report) == reference
        # The fallback rebuilt the tree: snapshots are from the sort
        # plan execution, not the abandoned rank join.
        assert report.operators

    def test_recovery_log_in_explain_output(self):
        db = self._wrong_selectivity_db(4.0)
        report = db.execute_guarded(
            SQL, policy=RecoveryPolicy(overrun_factor=1.1, min_headroom=4),
        )
        text = report.explain()
        assert "recovery: path=" in text

    def test_monitoring_disabled_runs_straight_through(self):
        db = self._wrong_selectivity_db(4.0)
        report = db.execute_guarded(
            SQL, policy=RecoveryPolicy(monitor_depths=False),
        )
        assert report.recovery.path == "direct"

    def test_guarded_executor_budget_still_enforced(self):
        db = self._wrong_selectivity_db(4.0)
        with pytest.raises(BudgetExceededError):
            db.execute_guarded(SQL, budget=ResourceBudget(max_pulls=3))

    def test_policy_validation(self):
        from repro.common.errors import OptimizerError

        with pytest.raises(OptimizerError):
            RecoveryPolicy(overrun_factor=0.5)
        with pytest.raises(OptimizerError):
            RecoveryPolicy(max_reestimates=-1)


class TestFallbackPlanRetrieval:
    def test_fallback_plan_is_rank_free_and_ordered(self):
        db = make_db()
        query = db.parse(SQL)
        executor = db.executor()
        result = executor.optimizer.optimize(query)
        fallback = executor.optimizer.fallback_plan(result)

        def nodes(plan):
            yield plan
            for child in plan.children:
                yield from nodes(child)

        assert not any(isinstance(n, RankJoinPlan) for n in nodes(fallback))
        assert fallback.order.covers(result.required_order)

    def test_guarded_executor_is_executor_drop_in(self):
        db = make_db()
        query = db.parse(SQL)
        base = db.executor()
        guarded = GuardedExecutor(base.catalog, db.cost_model, db.config)
        assert ranking_scores(guarded.run(query)) == ranking_scores(
            base.run(query))
