"""Instalment scheduling: preemption, fairness, deadlines, drain.

Pins the concurrent-serving acceptance scenario: under a mixed
workload an expensive batch-class query is observably preempted
(suspend/resume through PR 3's checkpoint machinery) while interactive
queries complete first, and every query's results are byte-identical
to its serial run.  All tests drive the asyncio server through
``asyncio.run`` from plain synchronous tests (pytest-asyncio is not a
dependency); the ``timeout`` markers are live only where CI installs
pytest-timeout.
"""

import asyncio

import pytest

from repro.common.errors import ExecutionError, TransientFaultError
from repro.common.rng import make_rng
from repro.executor.database import Database
from repro.optimizer.enumerator import OptimizerConfig
from repro.robustness.faults import FaultPlan, FaultSpec
from repro.server import AdmissionPolicy, SchedulerConfig, Server
from repro.server.session import (
    CANCELLED,
    COMPLETED,
    DRAINED,
    FAILED,
)

SQL = """
WITH Ranked AS (
  SELECT A.c1 AS x, B.c2 AS y,
         rank() OVER (ORDER BY (0.3*A.c1 + 0.7*B.c2)) AS rank
  FROM A, B WHERE A.c2 = B.c1)
SELECT x, y, rank FROM Ranked WHERE rank <= 5
"""

#: Same shape at k=40 -- expensive enough to need many instalments.
BIG_SQL = SQL.replace("rank <= 5", "rank <= 40")

FILTER_SQL = """
WITH Ranked AS (
  SELECT A.c1 AS x, B.c2 AS y,
         rank() OVER (ORDER BY (0.5*A.c1 + 0.5*B.c2)) AS rank
  FROM A, B WHERE A.c2 = B.c1 AND A.c1 > 0.4)
SELECT x, y, rank FROM Ranked WHERE rank <= 6
"""

THREE_WAY_SQL = """
WITH Ranked AS (
  SELECT A.c1 AS x, C.c1 AS z,
         rank() OVER (ORDER BY (0.4*A.c1 + 0.6*C.c1)) AS rank
  FROM A, B, C
  WHERE A.c2 = B.c1 AND B.c1 = C.c2)
SELECT x, z, rank FROM Ranked WHERE rank <= 8
"""


def make_db(rows=400, seed=3, domain=15, config=None, three_way=False):
    rng = make_rng(seed)
    db = Database(config=config)
    db.create_table("A", [("c1", "float"), ("c2", "int")], rows=[
        [float(rng.uniform(0, 1)), int(rng.integers(0, domain))]
        for _ in range(rows)
    ])
    db.create_table("B", [("c1", "int"), ("c2", "float")], rows=[
        [int(rng.integers(0, domain)), float(rng.uniform(0, 1))]
        for _ in range(rows)
    ])
    if three_way:
        db.create_table("C", [("c1", "float"), ("c2", "int")], rows=[
            [float(rng.uniform(0, 1)), int(rng.integers(0, domain))]
            for _ in range(rows)
        ])
    db.analyze()
    return db


def hrjn_db(**kwargs):
    # NRJN materialises its inner inside open() -- one atomic step no
    # instalment can split -- so tests that need incremental progress
    # per instalment pin the fully pipelined HRJN.
    return make_db(config=OptimizerConfig(enable_nrjn=False), **kwargs)


class FakeClock:
    """A manually advanced monotonic clock for deterministic deadlines."""

    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestConfigValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ExecutionError):
            SchedulerConfig(instalment_pulls=0)
        with pytest.raises(ExecutionError):
            SchedulerConfig(escalation_factor=0.5)

    def test_submit_requires_started_server(self):
        db = hrjn_db()
        server = Server(db)

        async def main():
            with pytest.raises(ExecutionError):
                await server.submit(SQL)

        asyncio.run(main())

    def test_submit_rejects_bad_arguments(self):
        db = hrjn_db()

        async def main():
            async with Server(db) as server:
                with pytest.raises(TypeError):
                    await server.submit(12345)
                with pytest.raises(ExecutionError):
                    await server.submit(SQL, deadline=0)

        asyncio.run(main())


@pytest.mark.timeout(120)
class TestMixedWorkloadPreemption:
    """The acceptance scenario: 8 concurrent sessions, observable
    preemption, interactive-first completion, byte-identical results."""

    def test_expensive_query_preempted_interactive_first(self):
        db = hrjn_db()
        serial_cheap = db.execute(SQL).rows
        serial_big = db.execute(BIG_SQL).rows
        # The expensive query (est. cost ~282) lands in the batch
        # class, the cheap ones (~102) stay interactive.
        policy = AdmissionPolicy(interactive_cost=150.0, high_water=64)
        config = SchedulerConfig(instalment_pulls=30)

        async def main():
            order = []

            async def watch(session):
                await session.result()
                order.append(session)

            async with Server(db, admission=policy,
                              scheduler=config) as server:
                big = await server.submit(BIG_SQL, tenant="analytics")
                # One yield lets the worker start the expensive
                # query's first instalment; the cheap submissions
                # below land before that instalment's suspension is
                # processed, so the suspension counts as a preemption.
                await asyncio.sleep(0)
                cheap = [
                    await server.submit(SQL, tenant="dash-%d" % i)
                    for i in range(7)
                ]
                await asyncio.gather(
                    *(watch(s) for s in [big] + cheap))
            return big, cheap, order

        big, cheap, order = asyncio.run(main())

        assert big.queue_class == "batch"
        assert all(s.queue_class == "interactive" for s in cheap)
        assert all(s.state == COMPLETED for s in [big] + cheap)

        # The expensive query was observably preempted: suspended at
        # an instalment boundary while other work was ready, and the
        # preemption surfaced in the metrics registry.
        assert big.stats["preemptions"] >= 1
        assert big.stats["instalments"] >= 2
        preempted = db.metrics.counter("server_preemptions_total")
        assert preempted.total() >= 1

        # Every interactive session completed before the batch one.
        assert order[-1] is big
        assert set(order[:-1]) == set(cheap)

        # Results are byte-identical to the serial runs.
        assert big.report.rows == serial_big
        for session in cheap:
            assert session.report.rows == serial_cheap

    def test_streamed_batches_concatenate_to_final_rows(self):
        db = hrjn_db()
        serial = db.execute(BIG_SQL).rows
        config = SchedulerConfig(instalment_pulls=30)

        async def main():
            async with Server(db, scheduler=config) as server:
                session = await server.submit(BIG_SQL)
                streamed = []
                batches = 0
                async for batch in session.batches():
                    streamed.extend(batch)
                    batches += 1
                report = await session.result()
            return streamed, batches, report

        streamed, batches, report = asyncio.run(main())
        # Rows arrive incrementally (rank order, head first), and the
        # concatenation is exactly the serial answer.
        assert batches >= 2
        assert streamed == serial
        assert report.rows == serial


@pytest.mark.timeout(120)
class TestWeightedFairness:
    def test_light_tenant_not_starved_by_heavy_tenant(self):
        db = hrjn_db()
        # Everything batch-class: fairness alone must interleave them.
        policy = AdmissionPolicy(interactive_cost=0.0, high_water=64)
        config = SchedulerConfig(instalment_pulls=30)

        async def main():
            order = []

            async def watch(session):
                await session.result()
                order.append(session)

            async with Server(db, admission=policy,
                              scheduler=config) as server:
                heavy = [
                    await server.submit(BIG_SQL, tenant="heavy")
                    for _ in range(3)
                ]
                await asyncio.sleep(0)
                light = await server.submit(SQL, tenant="light")
                await asyncio.gather(
                    *(watch(s) for s in heavy + [light]))
            return heavy, light, order

        heavy, light, order = asyncio.run(main())
        assert all(s.state == COMPLETED for s in heavy + [light])
        # The light tenant's cheap query (least weighted virtual
        # time) overtakes the heavy tenant's backlog instead of
        # waiting behind all three expensive queries.
        assert order.index(light) < order.index(order[-1])
        assert order[-1] in heavy

    def test_higher_weight_finishes_first_at_equal_cost(self):
        db = hrjn_db()
        policy = AdmissionPolicy(interactive_cost=0.0, high_water=64)
        config = SchedulerConfig(instalment_pulls=30)

        async def main():
            order = []

            async def watch(session):
                await session.result()
                order.append(session)

            async with Server(db, admission=policy,
                              scheduler=config) as server:
                server.register_tenant("gold", weight=2.0)
                server.register_tenant("bronze", weight=1.0)
                gold = await server.submit(BIG_SQL, tenant="gold")
                bronze = await server.submit(BIG_SQL, tenant="bronze")
                await asyncio.gather(watch(gold), watch(bronze))
            return gold, bronze, order

        gold, bronze, order = asyncio.run(main())
        assert [s.state for s in order] == [COMPLETED, COMPLETED]
        # Identical queries, but the weight-2 tenant accrues virtual
        # time at half the rate, wins more instalments, and completes
        # first.
        assert order[0] is gold


@pytest.mark.timeout(120)
class TestDeadlines:
    def test_deadline_cancels_with_partial_results(self):
        db = hrjn_db()
        serial = db.execute(BIG_SQL).rows
        clock = FakeClock()
        config = SchedulerConfig(instalment_pulls=30)

        async def main():
            async with Server(db, scheduler=config,
                              clock=clock) as server:
                session = await server.submit(BIG_SQL, deadline=5.0)
                streamed = []
                async for batch in session.batches():
                    streamed.extend(batch)
                    # The first delivered batch proves progress; now
                    # the deadline expires before the next re-pick.
                    clock.advance(10.0)
                report = await session.result()
            return session, streamed, report

        session, streamed, report = asyncio.run(main())
        assert session.state == CANCELLED
        # The partial answer is a correct prefix of the serial run --
        # the rank-aware plan delivered the head of the ranking before
        # the deadline hit.
        assert 0 < len(streamed) < len(serial)
        assert streamed == serial[:len(streamed)]
        assert report is not None
        assert report.recovery.path == "deadline"

    def test_cancel_requested_before_first_instalment(self):
        db = hrjn_db()

        async def main():
            async with Server(db) as server:
                session = await server.submit(BIG_SQL)
                session.cancel()
                report = await session.result()
            return session, report

        session, report = asyncio.run(main())
        assert session.state == CANCELLED
        assert report is None
        assert session.stats["instalments"] == 0


@pytest.mark.timeout(120)
class TestRetriesAndFailures:
    def test_transient_fault_retried_to_completion(self):
        db = hrjn_db()
        serial = db.execute(SQL).rows
        faults = FaultPlan([FaultSpec(
            target=lambda op: op.name.startswith("HRJN"),
            on="open", at=1, times=1, transient=True,
        )])

        async def main():
            async with Server(db) as server:
                session = await server.submit(SQL, faults=faults)
                report = await session.result()
            return session, report

        session, report = asyncio.run(main())
        assert session.state == COMPLETED
        assert session.stats["retries"] == 1
        assert report.rows == serial
        assert db.metrics.counter("server_retries_total").total() == 1

    def test_permanent_fault_fails_the_session(self):
        db = hrjn_db()
        faults = FaultPlan([FaultSpec(
            target=lambda op: op.name.startswith("HRJN"),
            on="next", at=3, transient=False,
        )])

        async def main():
            async with Server(db) as server:
                session = await server.submit(SQL, faults=faults)
                with pytest.raises(ExecutionError):
                    await session.result()
            return session

        session = asyncio.run(main())
        assert session.state == FAILED
        assert session.error is not None

    def test_retries_exhausted_fails_with_transient_error(self):
        # Faults only hit the first execution attempt (the scheduler's
        # chaos hook), so exhaustion means a zero-retry budget.
        db = hrjn_db()
        faults = FaultPlan([FaultSpec(
            target=lambda op: op.name.startswith("HRJN"),
            on="open", at=1, times=50, transient=True,
        )])
        config = SchedulerConfig(max_retries=0, retry_backoff=0.0)

        async def main():
            async with Server(db, scheduler=config) as server:
                session = await server.submit(SQL, faults=faults)
                with pytest.raises(TransientFaultError):
                    await session.result()
            return session

        session = asyncio.run(main())
        assert session.state == FAILED


@pytest.mark.timeout(120)
class TestDrain:
    def test_drain_suspends_to_resumable_checkpoint(self):
        db = hrjn_db()
        serial = db.execute(BIG_SQL).rows
        config = SchedulerConfig(instalment_pulls=30)

        async def main():
            server = Server(db, scheduler=config)
            async with server:
                session = await server.submit(BIG_SQL)
                while session.stats["instalments"] < 1:
                    await asyncio.sleep(0.001)
            return session

        session = asyncio.run(main())
        assert session.state == DRAINED
        assert session.suspension is not None
        # The drained handle resumes *offline* -- outside the server,
        # on the bare database -- to the exact serial answer.
        resumed = db.resume(session.suspension)
        assert resumed.rows == serial

    def test_drain_before_any_instalment_leaves_no_suspension(self):
        db = hrjn_db()

        async def main():
            server = Server(db)
            server.start()
            session = await server.submit(SQL)
            # Drain without yielding: the worker never ran.
            await server.drain()
            return session

        session = asyncio.run(main())
        assert session.state == DRAINED
        assert session.suspension is None

    def test_submit_while_draining_is_rejected(self):
        db = hrjn_db()

        async def main():
            server = Server(db)
            server.start()
            server.scheduler._draining = True
            with pytest.raises(ExecutionError):
                await server.submit(SQL)
            server.scheduler._draining = False
            await server.drain()

        asyncio.run(main())


@pytest.mark.timeout(180)
class TestSuspendResumeEquivalence:
    """Byte-identical suspend/resume across distinct plan shapes.

    Each query runs under instalments small enough to force at least
    one suspension, and its served answer must equal the serial run
    exactly.  The shapes cover the pipelined HRJN, the atomic-open
    NRJN (pre-open suspension + geometric escalation), a three-way
    join, a filtered join, and a deep top-k.
    """

    CASES = [
        ("hrjn_two_way", SQL, 20,
         dict(config=OptimizerConfig(enable_nrjn=False))),
        ("hrjn_deep_k", BIG_SQL, 60,
         dict(config=OptimizerConfig(enable_nrjn=False))),
        ("hrjn_filtered", FILTER_SQL, 25,
         dict(config=OptimizerConfig(enable_nrjn=False))),
        ("three_way", THREE_WAY_SQL, 60,
         dict(rows=120, three_way=True,
              config=OptimizerConfig(enable_nrjn=False))),
        ("nrjn_atomic_open", SQL, 120,
         dict(config=OptimizerConfig(enable_hrjn=False))),
    ]

    @pytest.mark.parametrize(
        "name,sql,instalment,db_kwargs",
        CASES, ids=[case[0] for case in CASES])
    def test_served_rows_match_serial(self, name, sql, instalment,
                                      db_kwargs):
        db = make_db(**db_kwargs)
        serial = db.execute(sql).rows
        config = SchedulerConfig(instalment_pulls=instalment)

        async def main():
            async with Server(db, scheduler=config) as server:
                session = await server.submit(sql)
                report = await session.result()
            return session, report

        session, report = asyncio.run(main())
        assert session.state == COMPLETED
        # At least one suspend/resume hop actually happened.
        assert session.stats["instalments"] >= 2
        assert report.rows == serial

    def test_pre_open_escalation_reaches_completion(self):
        # NRJN's inner materialisation (~400 pulls) exceeds the first
        # instalment; the scheduler escalates geometrically until the
        # atomic open clears instead of livelocking.
        db = make_db(config=OptimizerConfig(enable_hrjn=False))
        serial = db.execute(SQL).rows
        config = SchedulerConfig(instalment_pulls=120,
                                 escalation_factor=4.0)

        async def main():
            async with Server(db, scheduler=config) as server:
                session = await server.submit(SQL)
                report = await session.result()
            return session, report

        session, report = asyncio.run(main())
        assert session.state == COMPLETED
        assert session.stats["instalments"] >= 2
        assert report.rows == serial
