"""Unit tests for the u_j score-distribution model (Equation 1)."""

import math

import pytest

from repro.common.errors import EstimationError
from repro.common.rng import make_rng
from repro.estimation.distributions import (
    expected_delta_at_depth,
    expected_score_at_rank,
    log_factorial,
    sum_uniform_cdf,
    sum_uniform_mean,
)


class TestBasics:
    def test_log_factorial(self):
        assert log_factorial(0) == pytest.approx(0.0)
        assert log_factorial(5) == pytest.approx(math.log(120))

    def test_log_factorial_negative(self):
        with pytest.raises(EstimationError):
            log_factorial(-1)

    def test_mean(self):
        assert sum_uniform_mean(2, 10.0) == 10.0

    def test_cdf_boundaries(self):
        assert sum_uniform_cdf(2, 1.0, 2.0) == 0.0
        assert sum_uniform_cdf(2, 1.0, 0.0) == 1.0

    def test_cdf_tail_exact_uniform(self):
        # j=1: P[X > t] = (n - t) / n.
        assert sum_uniform_cdf(1, 1.0, 0.75) == pytest.approx(0.25)

    def test_cdf_tail_triangular(self):
        # j=2 over [0, 2]: P[X > t] = (2 - t)^2 / 2 in the top slab.
        assert sum_uniform_cdf(2, 1.0, 1.5) == pytest.approx(0.125)


class TestEquationOne:
    def test_uniform_case(self):
        # j=1, m samples over [0, n]: score_i = n - i*n/m.
        assert expected_score_at_rank(1, 100.0, 1000, 10) == pytest.approx(
            100.0 - 10 * 100.0 / 1000,
        )

    def test_triangular_case_matches_paper_example(self):
        # Paper: n elements from u2 -> score_i = 2n - sqrt(2 i n).
        n = 400.0
        for i in (1, 5, 20):
            expected = 2 * n - math.sqrt(2 * i * n)
            assert expected_score_at_rank(2, n, n, i) == pytest.approx(
                expected,
            )

    def test_empirical_agreement_u2(self):
        """Equation 1 tracks the empirical ranks of u2 samples."""
        rng = make_rng(42)
        n_range = 1.0
        m = 200000
        samples = rng.uniform(0, n_range, (m, 2)).sum(axis=1)
        samples.sort()
        samples = samples[::-1]
        for i in (10, 100, 1000):
            predicted = expected_score_at_rank(2, n_range, m, i)
            assert predicted == pytest.approx(samples[i - 1], abs=0.02)

    def test_invalid_inputs(self):
        with pytest.raises(EstimationError):
            expected_score_at_rank(0, 1.0, 10, 1)
        with pytest.raises(EstimationError):
            expected_score_at_rank(1, 1.0, 10, 0)


class TestDelta:
    def test_uniform_delta_uses_slab(self):
        # j=1: slab = n/m, delta(depth) = (depth-1) * slab.
        assert expected_delta_at_depth(1, 1.0, 100, 11) == pytest.approx(0.1)

    def test_delta_at_top_is_zero(self):
        assert expected_delta_at_depth(1, 1.0, 100, 1) == 0.0
        assert expected_delta_at_depth(3, 1.0, 100, 1) == pytest.approx(0.0)

    def test_delta_monotone_in_depth(self):
        deltas = [expected_delta_at_depth(2, 1.0, 1000, d)
                  for d in (1, 10, 50, 200)]
        assert deltas == sorted(deltas)

    def test_invalid_depth(self):
        with pytest.raises(EstimationError):
            expected_delta_at_depth(1, 1.0, 100, 0)
