"""Unit tests for the executor and Database facade."""

import pytest

from repro.common.rng import make_rng
from repro.executor.database import Database


def make_db(rows=200, seed=3, domain=15):
    rng = make_rng(seed)
    db = Database()
    db.create_table("A", [("c1", "float"), ("c2", "int")], rows=[
        [float(rng.uniform(0, 1)), int(rng.integers(0, domain))]
        for _ in range(rows)
    ])
    db.create_table("B", [("c1", "int"), ("c2", "float")], rows=[
        [int(rng.integers(0, domain)), float(rng.uniform(0, 1))]
        for _ in range(rows)
    ])
    db.analyze()
    return db


Q1_STYLE = """
WITH Ranked AS (
  SELECT A.c1 AS x, B.c2 AS y,
         rank() OVER (ORDER BY (0.3*A.c1 + 0.7*B.c2)) AS rank
  FROM A, B WHERE A.c2 = B.c1)
SELECT x, y, rank FROM Ranked WHERE rank <= 5
"""


class TestDatabase:
    def test_execute_sql_returns_k_rows(self):
        report = make_db().execute(Q1_STYLE)
        assert len(report.rows) == 5

    def test_results_correctly_ranked(self):
        db = make_db()
        report = db.execute(Q1_STYLE)
        got = [round(0.3 * r["A.c1"] + 0.7 * r["B.c2"], 9)
               for r in report.rows]
        # Brute force.
        truth = []
        for a in db.catalog.table("A").scan():
            for b in db.catalog.table("B").scan():
                if a["A.c2"] == b["B.c1"]:
                    truth.append(0.3 * a["A.c1"] + 0.7 * b["B.c2"])
        truth.sort(reverse=True)
        assert got == [round(v, 9) for v in truth[:5]]

    def test_auto_score_indexes(self):
        db = make_db()
        assert db.catalog.table("A").find_index_on("A.c1") is not None
        # Integer columns get no automatic index.
        assert db.catalog.table("A").find_index_on("A.c2") is None

    def test_execute_parsed_query(self):
        db = make_db()
        query = db.parse(Q1_STYLE)
        assert len(db.execute(query).rows) == 5

    def test_explain_only(self):
        result = make_db().explain(Q1_STYLE)
        assert result.best_plan is not None

    def test_execute_rejects_other_types(self):
        with pytest.raises(TypeError):
            make_db().execute(42)

    def test_insert_and_selectivity_pinning(self):
        db = make_db()
        db.insert("A", [0.99, 3])
        db.set_join_selectivity("A.c2", "B.c1", 0.07)
        assert db.catalog.join_selectivity("A", "A.c2", "B", "B.c1") == 0.07


class TestReports:
    def test_operator_snapshots_present(self):
        report = make_db().execute(Q1_STYLE)
        assert report.operators
        names = {snap.name for snap in report.operators}
        assert any(n.startswith(("HRJN", "NRJN", "Limit")) for n in names)

    def test_rank_join_snapshot_depths(self):
        report = make_db().execute(Q1_STYLE)
        snaps = report.rank_join_snapshots()
        if snaps:  # The optimizer picked a rank-join plan.
            assert all(len(s.pulled) == 2 for s in snaps)
            # depth is the deepest consumed input prefix, not a copy
            # of the pulled tuple.
            assert all(s.depth == max(s.pulled) for s in snaps)
            assert all(s.depth > 0 for s in snaps)

    def test_explain_string(self):
        report = make_db().execute(Q1_STYLE)
        text = report.explain()
        assert "best plan" in text and "execution:" in text

    def test_early_out_visible_in_stats(self):
        """The rank-join should not consume its ranked input fully."""
        db = make_db(rows=2000, domain=10)
        report = db.execute(Q1_STYLE)
        snaps = report.rank_join_snapshots()
        assert snaps
        top = snaps[0]
        assert min(top.pulled) < 2000
