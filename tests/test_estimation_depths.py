"""Unit tests for the depth-estimation closed forms (Sections 4.1-4.3)."""

import math

import pytest

from repro.common.errors import EstimationError
from repro.estimation.depths import (
    DepthEstimate,
    any_k_depths,
    any_k_depths_uniform,
    top_k_depths,
    top_k_depths_average,
    top_k_depths_average_streams,
    top_k_depths_streams,
    top_k_depths_uniform,
)


class TestAnyKUniform:
    def test_theorem_one_constraint(self):
        """Chosen depths must satisfy s * cL * cR >= k (Theorem 1)."""
        for k, s in [(10, 0.1), (100, 0.01), (7, 0.5)]:
            c_left, c_right = any_k_depths_uniform(k, s)
            assert s * c_left * c_right >= k - 1e-9

    def test_symmetric_case(self):
        c_left, c_right = any_k_depths_uniform(100, 0.01)
        assert c_left == pytest.approx(math.sqrt(100 / 0.01))
        assert c_left == pytest.approx(c_right)

    def test_slab_asymmetry(self):
        # Larger slab on L (sparser scores) means smaller cL.
        c_left, c_right = any_k_depths_uniform(100, 0.01, x=2.0, y=1.0)
        assert c_left < c_right
        # Exact closed form: cL = sqrt(yk/xs), cR = sqrt(xk/ys).
        assert c_left == pytest.approx(math.sqrt(1.0 * 100 / (2.0 * 0.01)))

    def test_invalid_inputs(self):
        with pytest.raises(EstimationError):
            any_k_depths_uniform(0, 0.1)
        with pytest.raises(EstimationError):
            any_k_depths_uniform(10, 0.0)
        with pytest.raises(EstimationError):
            any_k_depths_uniform(10, 0.1, x=0.0)


class TestTopKUniform:
    def test_simple_case_two_sqrt(self):
        """x == y gives dL = dR = 2*sqrt(k/s) (Section 4.3)."""
        estimate = top_k_depths_uniform(100, 0.01)
        assert estimate.d_left == pytest.approx(2 * math.sqrt(100 / 0.01))
        assert estimate.d_right == pytest.approx(estimate.d_left)

    def test_d_is_double_c_at_optimum(self):
        estimate = top_k_depths_uniform(50, 0.02, x=3.0, y=1.0)
        assert estimate.d_left == pytest.approx(2 * estimate.c_left)
        assert estimate.d_right == pytest.approx(2 * estimate.c_right)

    def test_monotone_in_k(self):
        depths = [top_k_depths_uniform(k, 0.01).d_left
                  for k in (1, 10, 100, 1000)]
        assert depths == sorted(depths)

    def test_monotone_in_inverse_selectivity(self):
        depths = [top_k_depths_uniform(100, s).d_left
                  for s in (0.5, 0.1, 0.01, 0.001)]
        assert depths == sorted(depths)


class TestGeneralWorstCase:
    def test_reduces_to_simple_case(self):
        """l = r = 1 must reproduce the two-uniform-inputs formulas."""
        estimate = top_k_depths(100, 0.01, l=1, r=1)
        assert estimate.d_left == pytest.approx(2 * math.sqrt(100 / 0.01))

    def test_equation_2_value(self):
        """Spot-check Equation 2 numerically."""
        k, s, n, l, r = 20.0, 0.02, 3000.0, 2, 1
        expected_c_left = (
            (math.factorial(r) ** l * k ** l * n ** (r - l) * l ** (r * l))
            / (s ** l * math.factorial(l) ** r * r ** (r * l))
        ) ** (1.0 / (r + l))
        c_left, _c_right = any_k_depths(k, s, n=n, l=l, r=r)
        assert c_left == pytest.approx(expected_c_left)

    def test_equations_4_5_scaling(self):
        k, s, n = 50, 0.01, 2000
        estimate = top_k_depths(k, s, n=n, l=2, r=1)
        c_left, c_right = any_k_depths(k, s, n=n, l=2, r=1)
        assert estimate.d_left == pytest.approx(c_left * (1 + 1 / 2) ** 2)
        assert estimate.d_right == pytest.approx(c_right * (1 + 2 / 1) ** 1)

    def test_n_required_for_asymmetric(self):
        with pytest.raises(EstimationError, match="n is required"):
            top_k_depths(10, 0.1, l=2, r=1)

    def test_invalid_l_r(self):
        with pytest.raises(EstimationError):
            top_k_depths(10, 0.1, l=0, r=1)


class TestAverageCase:
    def test_simple_case_sqrt_2k_over_s(self):
        estimate = top_k_depths_average(100, 0.01)
        assert estimate.d_left == pytest.approx(math.sqrt(2 * 100 / 0.01))

    def test_average_below_worst(self):
        for l, r in [(1, 1), (2, 1), (2, 2), (3, 1)]:
            worst = top_k_depths(50, 0.01, n=1000, l=l, r=r)
            average = top_k_depths_average(50, 0.01, n=1000, l=l, r=r)
            assert average.d_left <= worst.d_left + 1e-9
            assert average.d_right <= worst.d_right + 1e-9

    def test_any_k_below_average(self):
        average = top_k_depths_average(100, 0.01)
        assert average.c_left <= average.d_left


class TestStreamGeneralisation:
    def test_reduces_to_paper_with_m_equals_n(self):
        for (k, s, n, l, r) in [(100, 0.01, 1000, 1, 1),
                                (50, 0.001, 5000, 2, 1),
                                (20, 0.02, 3000, 2, 2)]:
            paper = top_k_depths(k, s, n=n, l=l, r=r)
            streams = top_k_depths_streams(k, s, n, l=l, r=r)
            assert streams.d_left == pytest.approx(paper.d_left)
            assert streams.d_right == pytest.approx(paper.d_right)
            paper_avg = top_k_depths_average(k, s, n=n, l=l, r=r)
            streams_avg = top_k_depths_average_streams(k, s, n, l=l, r=r)
            assert streams_avg.d_left == pytest.approx(paper_avg.d_left)

    def test_denser_stream_needs_more_depth(self):
        """A denser left stream (more tuples per score unit) requires a
        larger depth to reach the same score gap."""
        sparse = top_k_depths_streams(20, 0.02, 3000, l=2, r=1,
                                      m_left=3000, m_right=3000)
        dense = top_k_depths_streams(20, 0.02, 3000, l=2, r=1,
                                     m_left=3000 * 60, m_right=3000)
        assert dense.d_left > sparse.d_left

    def test_any_k_constraint_still_met(self):
        estimate = top_k_depths_streams(40, 0.05, 2000, l=2, r=1,
                                        m_left=80000, m_right=2000)
        assert 0.05 * estimate.c_left * estimate.c_right >= 40 - 1e-6


class TestClamping:
    def test_clamp_caps_depths(self):
        estimate = DepthEstimate(10.0, 10.0, 500.0, 700.0)
        clamped = estimate.clamp(max_left=100, max_right=1000)
        assert clamped.d_left == 100.0
        assert clamped.d_right == 700.0
        assert clamped.clamped

    def test_clamp_no_change(self):
        estimate = DepthEstimate(10.0, 10.0, 50.0, 50.0)
        clamped = estimate.clamp(max_left=100, max_right=100)
        assert not clamped.clamped
        assert clamped.as_tuple() == (50.0, 50.0)
