"""Byte-identical top-k equivalence of any-k vs the serial HRJN
reference.

Pinning the optimizer to the any-k operator family must return exactly
the rows of the binary HRJN reference plans -- same values, same order
-- across the sixteen SQL plan shapes of the parallel-equivalence
matrix, plus multi-way chain and star queries whose predicates each
join a *different* key column (the shapes MHRJN's shared key cannot
express).  A final test pins down the cost-model crossover: the
unforced optimizer picks binary rank joins at shallow k and the any-k
plan at deep k, with identical answers either side of the switch.
"""

import pytest

from repro.common.rng import make_rng
from repro.executor.database import Database
from repro.optimizer.enumerator import OptimizerConfig
from repro.optimizer.expressions import ScoreExpression
from repro.optimizer.plans import AnyKPlan
from repro.optimizer.query import JoinPredicate, RankQuery

from tests.test_four_way_queries import brute_force
from tests.test_parallel_equivalence import SHAPES

ANYK_ONLY = dict(enable_anyk=True, enable_hrjn=False,
                 enable_nrjn=False)


def make_sql_db(config=None):
    """The parallel-equivalence matrix data (same seed and layout as
    ``tests.test_parallel_equivalence.make_db``), with a configurable
    optimizer so the same shapes run under any-k and HRJN."""
    rng = make_rng(5)
    db = Database(config=config)
    for name in ("A", "C"):
        db.create_table(
            name, [("c1", "float"), ("c2", "int")], rows=[
                [float(rng.uniform(0, 1)), int(rng.integers(0, 30))]
                for _ in range(240)
            ],
        )
    db.create_table(
        "B", [("c1", "int"), ("c2", "float")], rows=[
            [int(rng.integers(0, 30)), float(rng.uniform(0, 1))]
            for _ in range(240)
        ],
    )
    db.analyze()
    return db


@pytest.fixture(scope="module")
def hrjn_rows():
    db = make_sql_db(OptimizerConfig(enable_nrjn=False))
    return {name: db.execute(sql).rows for name, sql in SHAPES.items()}


@pytest.mark.parametrize("shape", sorted(SHAPES))
def test_sql_shapes_match_hrjn_reference(shape, hrjn_rows):
    db = make_sql_db(OptimizerConfig(**ANYK_ONLY))
    report = db.execute(SHAPES[shape])
    assert report.rows == hrjn_rows[shape], (
        "any-k diverged from the HRJN reference on %s" % (shape,)
    )


# ----------------------------------------------------------------------
# Multi-way chains and stars, different key per predicate
# ----------------------------------------------------------------------
def make_multiway_db(config=None, rows=60, domain=8, seed=21):
    rng = make_rng(seed)
    db = Database(config=config)
    for name in ("A", "B", "C", "D"):
        db.create_table(
            name, [("c1", "float"), ("c2", "int"), ("c3", "int")],
            rows=[[float(rng.uniform(0, 1)),
                   int(rng.integers(0, domain)),
                   int(rng.integers(0, domain))]
                  for _ in range(rows)],
        )
    db.analyze()
    return db


def multiway_query(tables, predicates, k=25):
    weight = 1.0 / len(tables)
    return RankQuery(
        tables=tables,
        predicates=[JoinPredicate(left, right)
                    for left, right in predicates],
        ranking=ScoreExpression({"%s.c1" % t: weight for t in tables}),
        k=k,
    )


MULTIWAY = {
    "chain3": ("ABC", [("A.c2", "B.c2"), ("B.c3", "C.c3")]),
    "star3": ("ABC", [("A.c2", "B.c2"), ("A.c3", "C.c3")]),
    "chain4": ("ABCD", [("A.c2", "B.c2"), ("B.c3", "C.c3"),
                        ("C.c2", "D.c2")]),
    "star4": ("ABCD", [("A.c2", "B.c2"), ("A.c3", "C.c3"),
                       ("A.c2", "D.c2")]),
}


def projection(query, rows):
    """Base-column values plus the evaluated score, per answer row.

    The two operator families carry their combined score in
    differently named computed columns (``_score_ANYK*`` vs
    ``_score_RJ*``), so equivalence is asserted on what the answers
    *are*: every base column of every joined table, in order, plus the
    ranking score evaluated from those base columns.
    """
    columns = ["%s.c%d" % (table, i)
               for table in sorted(query.tables) for i in (1, 2, 3)]
    return [
        tuple(row[column] for column in columns)
        + (round(query.ranking.evaluate(row), 9),)
        for row in rows
    ]


@pytest.mark.parametrize("shape", sorted(MULTIWAY))
def test_multiway_matches_hrjn_reference(shape):
    tables, predicates = MULTIWAY[shape]
    query = multiway_query(tables, predicates)
    reference_db = make_multiway_db(OptimizerConfig(enable_anyk=False))
    anyk_db = make_multiway_db(OptimizerConfig(**ANYK_ONLY))
    reference = reference_db.execute(query)
    result = anyk_db.execute(query)
    assert projection(query, result.rows) \
        == projection(query, reference.rows)
    # The pinned run really used the any-k plan.
    assert isinstance(anyk_db.explain(query).best_plan, AnyKPlan)


@pytest.mark.parametrize("shape", sorted(MULTIWAY))
def test_multiway_matches_brute_force(shape):
    tables, predicates = MULTIWAY[shape]
    query = multiway_query(tables, predicates)
    db = make_multiway_db(OptimizerConfig(**ANYK_ONLY))
    report = db.execute(query)
    got = [round(query.ranking.evaluate(r), 9) for r in report.rows]
    assert got == brute_force(db, query)


# ----------------------------------------------------------------------
# Cost-model crossover: the optimizer switches operator families by k
# ----------------------------------------------------------------------
class TestOptimizerCrossover:
    def db(self):
        return make_multiway_db(
            OptimizerConfig(enable_anyk=True), rows=200, domain=20,
        )

    def query(self, k):
        tables, predicates = MULTIWAY["chain4"]
        return multiway_query(tables, predicates, k=k)

    def test_shallow_k_stays_on_binary_rank_joins(self):
        db = self.db()
        plan = db.explain(self.query(5)).best_plan
        assert not isinstance(plan, AnyKPlan)

    def test_deep_k_crosses_over_to_anyk(self):
        db = self.db()
        plan = db.explain(self.query(1000)).best_plan
        assert isinstance(plan, AnyKPlan)

    def test_answers_identical_across_the_switch(self):
        query = self.query(50)
        chosen = self.db().execute(query)
        reference = make_multiway_db(
            OptimizerConfig(enable_anyk=False), rows=200, domain=20,
        ).execute(query)
        assert projection(query, chosen.rows) \
            == projection(query, reference.rows)
