"""Unit tests for the MEMO structure and rank-aware pruning."""

import pytest

from repro.common.errors import OptimizerError
from repro.optimizer.memo import Memo
from repro.optimizer.properties import OrderProperty


class _StubPlan:
    """Minimal plan with a controllable cost curve."""

    def __init__(self, tables, order, pipelined, cost_fn, cardinality=1000):
        self.tables = frozenset(tables)
        self.order = order
        self.pipelined = pipelined
        self._cost_fn = cost_fn
        self.cardinality = cardinality
        self.leaf_count = len(self.tables)

    def cost(self, k):
        return self._cost_fn(k)


def flat(cost):
    return lambda k: cost


class TestBasicPruning:
    def test_cheaper_same_properties_prunes(self):
        memo = Memo(k_min=1)
        dc = OrderProperty.none()
        cheap = _StubPlan("A", dc, False, flat(10))
        costly = _StubPlan("A", dc, False, flat(20))
        assert memo.add(costly)
        assert memo.add(cheap)
        assert memo.entry({"A"}) == [cheap]

    def test_insert_dominated_rejected(self):
        memo = Memo(k_min=1)
        dc = OrderProperty.none()
        memo.add(_StubPlan("A", dc, False, flat(10)))
        assert not memo.add(_StubPlan("A", dc, False, flat(20)))

    def test_ordered_plan_survives_cheaper_dc(self):
        memo = Memo(k_min=1)
        ordered = _StubPlan("A", OrderProperty.on("A.c1"), False, flat(50))
        dc = _StubPlan("A", OrderProperty.none(), False, flat(10))
        memo.add(ordered)
        memo.add(dc)
        assert len(memo.entry({"A"})) == 2

    def test_cheaper_ordered_prunes_dc(self):
        memo = Memo(k_min=1)
        dc = _StubPlan("A", OrderProperty.none(), False, flat(50))
        ordered = _StubPlan("A", OrderProperty.on("A.c1"), False, flat(10))
        memo.add(dc)
        memo.add(ordered)
        assert memo.entry({"A"}) == [ordered]

    def test_pipelined_plan_survives_cheaper_blocking(self):
        memo = Memo(k_min=1)
        dc = OrderProperty.none()
        pipelined = _StubPlan("A", dc, True, flat(50))
        blocking = _StubPlan("A", dc, False, flat(10))
        memo.add(pipelined)
        memo.add(blocking)
        assert len(memo.entry({"A"})) == 2


class TestKDependentPruning:
    """The Section 3.3 three-case analysis via endpoint comparison."""

    def order(self):
        return OrderProperty.on("A.c1")

    def test_rank_plan_cheaper_everywhere_prunes_sort(self):
        memo = Memo(k_min=10)
        sort_plan = _StubPlan("A", self.order(), False, flat(1000))
        rank_plan = _StubPlan("A", self.order(), True, lambda k: k)
        memo.add(sort_plan)
        memo.add(rank_plan)  # cost(10)=10, cost(1000)=1000 <= 1000.
        assert memo.entry({"A"}) == [rank_plan]

    def test_crossover_keeps_both(self):
        memo = Memo(k_min=10)
        sort_plan = _StubPlan("A", self.order(), False, flat(500))
        rank_plan = _StubPlan("A", self.order(), True, lambda k: 2 * k)
        memo.add(sort_plan)
        memo.add(rank_plan)  # cost(10)=20 < 500 < cost(1000)=2000.
        assert len(memo.entry({"A"})) == 2

    def test_sort_cheaper_everywhere_prunes_blocking_rank_plan(self):
        memo = Memo(k_min=100)
        sort_plan = _StubPlan("A", self.order(), False, flat(50))
        rank_plan = _StubPlan("A", self.order(), False,
                              lambda k: 100 + k)
        memo.add(sort_plan)
        memo.add(rank_plan)
        assert memo.entry({"A"}) == [sort_plan]

    def test_sort_cheaper_everywhere_keeps_pipelined_rank_plan(self):
        memo = Memo(k_min=100)
        sort_plan = _StubPlan("A", self.order(), False, flat(50))
        rank_plan = _StubPlan("A", self.order(), True, lambda k: 100 + k)
        memo.add(sort_plan)
        memo.add(rank_plan)
        assert len(memo.entry({"A"})) == 2


class TestQueries:
    def test_best_filters_by_order(self):
        memo = Memo(k_min=1)
        dc = _StubPlan("A", OrderProperty.none(), False, flat(5))
        ordered = _StubPlan("A", OrderProperty.on("A.c1"), False, flat(9))
        memo.add(dc)
        memo.add(ordered)
        assert memo.best({"A"}) is dc
        assert memo.best({"A"}, order=OrderProperty.on("A.c1")) is ordered
        assert memo.best({"A"}, order=OrderProperty.on("A.c2")) is None

    def test_class_count(self):
        memo = Memo(k_min=1)
        memo.add(_StubPlan("A", OrderProperty.none(), False, flat(5)))
        memo.add(_StubPlan("A", OrderProperty.on("A.c1"), False, flat(9)))
        memo.add(_StubPlan("A", OrderProperty.none(), True, flat(9)))
        assert memo.class_count({"A"}) == 2  # DC (x2 plans) + A.c1.

    def test_invalid_k_min(self):
        with pytest.raises(OptimizerError):
            Memo(k_min=0)

    def test_empty_entry(self):
        memo = Memo()
        assert memo.entry({"Z"}) == []
        assert memo.best({"Z"}) is None
