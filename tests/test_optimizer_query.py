"""Unit tests for the logical query description."""

import pytest

from repro.common.errors import OptimizerError
from repro.optimizer.expressions import ScoreExpression
from repro.optimizer.query import JoinPredicate, RankQuery


class TestJoinPredicate:
    def test_tables(self):
        predicate = JoinPredicate("A.c1", "B.c1")
        assert predicate.tables == frozenset({"A", "B"})
        assert predicate.left_table == "A"

    def test_same_table_rejected(self):
        with pytest.raises(OptimizerError, match="span two tables"):
            JoinPredicate("A.c1", "A.c2")

    def test_column_for(self):
        predicate = JoinPredicate("A.c1", "B.c2")
        assert predicate.column_for("A") == "A.c1"
        assert predicate.column_for("B") == "B.c2"
        with pytest.raises(OptimizerError):
            predicate.column_for("C")

    def test_connects(self):
        predicate = JoinPredicate("A.c1", "B.c1")
        assert predicate.connects({"A"}, {"B", "C"})
        assert predicate.connects({"B"}, {"A"})
        assert not predicate.connects({"A"}, {"C"})

    def test_symmetric_equality(self):
        assert JoinPredicate("A.c1", "B.c1") == JoinPredicate(
            "B.c1", "A.c1",
        )


class TestRankQueryValidation:
    def test_ranking_requires_k(self):
        with pytest.raises(OptimizerError, match="k >= 1"):
            RankQuery(tables="AB",
                      ranking=ScoreExpression.single("A.c1"))

    def test_k_without_ranking_rejected(self):
        with pytest.raises(OptimizerError):
            RankQuery(tables="A", k=5)

    def test_ranking_and_order_by_exclusive(self):
        with pytest.raises(OptimizerError, match="mutually exclusive"):
            RankQuery(tables="A",
                      ranking=ScoreExpression.single("A.c1"), k=5,
                      order_by="A.c2")

    def test_predicate_table_check(self):
        with pytest.raises(OptimizerError, match="not in FROM"):
            RankQuery(tables="AB",
                      predicates=[JoinPredicate("A.c1", "Z.c1")])

    def test_ranking_table_check(self):
        with pytest.raises(OptimizerError, match="not in FROM"):
            RankQuery(tables="A",
                      ranking=ScoreExpression.single("Z.c1"), k=5)

    def test_order_by_table_check(self):
        with pytest.raises(OptimizerError):
            RankQuery(tables="A", order_by="Z.c1")

    def test_empty_tables_rejected(self):
        with pytest.raises(OptimizerError):
            RankQuery(tables=())


class TestGraphHelpers:
    def query(self):
        return RankQuery(
            tables="ABC",
            predicates=[JoinPredicate("A.c1", "B.c1"),
                        JoinPredicate("B.c2", "C.c2")],
        )

    def test_predicates_between(self):
        query = self.query()
        between = query.predicates_between({"A"}, {"B", "C"})
        assert len(between) == 1
        assert between[0].left_column == "A.c1"

    def test_predicates_within(self):
        query = self.query()
        assert len(query.predicates_within({"A", "B"})) == 1
        assert len(query.predicates_within({"A", "B", "C"})) == 2
        assert query.predicates_within({"A", "C"}) == []

    def test_pending_join_columns(self):
        query = self.query()
        assert query.pending_join_columns({"A", "B"}) == ["B.c2"]
        assert query.pending_join_columns({"B"}) == ["B.c1", "B.c2"]
        assert query.pending_join_columns({"A", "B", "C"}) == []

    def test_connectivity(self):
        query = self.query()
        assert query.is_connected({"A", "B"})
        assert query.is_connected({"A", "B", "C"})
        assert not query.is_connected({"A", "C"})
        assert query.is_connected({"A"})

    def test_is_ranking_flag(self):
        assert not self.query().is_ranking
        ranked = RankQuery(
            tables="A", ranking=ScoreExpression.single("A.c1"), k=3,
        )
        assert ranked.is_ranking
