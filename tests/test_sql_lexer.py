"""Unit tests for the SQL tokenizer."""

import pytest

from repro.common.errors import ParseError
from repro.sql.lexer import Token, tokenize


def kinds(text):
    return [(t.kind, t.text) for t in tokenize(text)[:-1]]


class TestTokens:
    def test_keywords_case_insensitive(self):
        assert kinds("select FROM Where") == [
            ("keyword", "SELECT"), ("keyword", "FROM"), ("keyword", "WHERE"),
        ]

    def test_identifiers(self):
        assert kinds("RankedABC my_col") == [
            ("ident", "RankedABC"), ("ident", "my_col"),
        ]

    def test_numbers(self):
        assert kinds("0.3 5 12.75") == [
            ("number", "0.3"), ("number", "5"), ("number", "12.75"),
        ]

    def test_qualified_column(self):
        assert kinds("A.c1") == [
            ("ident", "A"), ("symbol", "."), ("ident", "c1"),
        ]

    def test_operators(self):
        assert kinds("<= = ( ) , * + ;") == [
            ("symbol", "<="), ("symbol", "="), ("symbol", "("),
            ("symbol", ")"), ("symbol", ","), ("symbol", "*"),
            ("symbol", "+"), ("symbol", ";"),
        ]

    def test_number_then_dot_token(self):
        # "5." followed by non-digit: the dot is a separate symbol.
        assert kinds("rank<=5.") == [
            ("keyword", "RANK"), ("symbol", "<="), ("number", "5"),
            ("symbol", "."),
        ]

    def test_line_comment_skipped(self):
        assert kinds("SELECT -- a comment\nFROM") == [
            ("keyword", "SELECT"), ("keyword", "FROM"),
        ]

    def test_end_token(self):
        tokens = tokenize("x")
        assert tokens[-1].kind == Token.END

    def test_unexpected_character(self):
        with pytest.raises(ParseError, match="unexpected character"):
            tokenize("SELECT @")

    def test_position_tracking(self):
        tokens = tokenize("SELECT x")
        assert tokens[0].position == 0
        assert tokens[1].position == 7

    def test_helpers(self):
        token = tokenize("FROM")[0]
        assert token.is_keyword("from")
        assert not token.is_symbol(",")
