"""Unit tests for Column, Schema, and Row."""

import pytest

from repro.common.errors import SchemaError
from repro.common.types import Column, Row, Schema


class TestColumn:
    def test_qualified_name(self):
        assert Column("c1", table="A").qualified_name == "A.c1"

    def test_unqualified_name(self):
        assert Column("c1").qualified_name == "c1"

    def test_with_table_rebinds(self):
        column = Column("c1", type_name="int").with_table("B")
        assert column.qualified_name == "B.c1"
        assert column.type_name == "int"

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Column("")

    def test_bad_type_rejected(self):
        with pytest.raises(SchemaError):
            Column("c1", type_name="blob")

    def test_equality_and_hash(self):
        a1 = Column("c1", table="A")
        a2 = Column("c1", table="A")
        b = Column("c1", table="B")
        assert a1 == a2
        assert hash(a1) == hash(a2)
        assert a1 != b


class TestSchema:
    def _schema(self):
        return Schema([
            Column("c1", table="A"),
            Column("c2", table="A", type_name="int"),
            Column("c1", table="B"),
        ])

    def test_len_and_iteration(self):
        schema = self._schema()
        assert len(schema) == 3
        assert [c.qualified_name for c in schema] == [
            "A.c1", "A.c2", "B.c1",
        ]

    def test_resolve_qualified(self):
        assert self._schema().resolve("A.c1").table == "A"

    def test_resolve_bare_unambiguous(self):
        assert self._schema().resolve("c2").qualified_name == "A.c2"

    def test_resolve_bare_ambiguous(self):
        with pytest.raises(SchemaError, match="ambiguous"):
            self._schema().resolve("c1")

    def test_resolve_unknown(self):
        with pytest.raises(SchemaError, match="unknown"):
            self._schema().resolve("A.zz")

    def test_contains(self):
        schema = self._schema()
        assert "A.c1" in schema
        assert "c2" in schema
        assert "c1" not in schema  # Ambiguous counts as absent.
        assert "Z.c9" not in schema

    def test_duplicate_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            Schema([Column("c1", table="A"), Column("c1", table="A")])

    def test_merge(self):
        left = Schema([Column("c1", table="A")])
        right = Schema([Column("c1", table="B")])
        merged = left.merge(right)
        assert merged.qualified_names() == ("A.c1", "B.c1")

    def test_merge_conflict(self):
        schema = Schema([Column("c1", table="A")])
        with pytest.raises(SchemaError):
            schema.merge(schema)

    def test_project(self):
        projected = self._schema().project(["B.c1"])
        assert projected.qualified_names() == ("B.c1",)

    def test_equality(self):
        assert self._schema() == self._schema()


class TestRow:
    def test_getitem(self):
        row = Row({"A.c1": 1.5})
        assert row["A.c1"] == 1.5

    def test_getitem_missing(self):
        with pytest.raises(SchemaError, match="no column"):
            Row({"A.c1": 1})["A.c2"]

    def test_get_default(self):
        assert Row({"A.c1": 1}).get("A.c2", 42) == 42

    def test_contains_and_len(self):
        row = Row({"A.c1": 1, "A.c2": 2})
        assert "A.c1" in row
        assert len(row) == 2

    def test_merge_disjoint(self):
        merged = Row({"A.c1": 1}).merge(Row({"B.c1": 2}))
        assert merged["A.c1"] == 1
        assert merged["B.c1"] == 2

    def test_merge_same_value_ok(self):
        merged = Row({"A.c1": 1}).merge(Row({"A.c1": 1, "B.c1": 2}))
        assert len(merged) == 2

    def test_merge_conflict_rejected(self):
        with pytest.raises(SchemaError, match="conflicting"):
            Row({"A.c1": 1}).merge(Row({"A.c1": 2}))

    def test_project(self):
        row = Row({"A.c1": 1, "A.c2": 2}).project(["A.c2"])
        assert row.as_dict() == {"A.c2": 2}

    def test_equality_and_hash(self):
        assert Row({"x": 1}) == Row({"x": 1})
        assert hash(Row({"x": 1})) == hash(Row({"x": 1}))
        assert Row({"x": 1}) != Row({"x": 2})

    def test_as_dict_is_copy(self):
        row = Row({"x": 1})
        d = row.as_dict()
        d["x"] = 99
        assert row["x"] == 1
