"""Unit tests for scans, filter, and project."""

import pytest

from repro.common.errors import SchemaError
from repro.operators.filters import Filter, Project
from repro.operators.scan import IndexScan, TableScan


class TestTableScan:
    def test_heap_order(self, small_table):
        rows = list(TableScan(small_table))
        assert [r["T.id"] for r in rows] == list(range(10))

    def test_schema(self, small_table):
        assert TableScan(small_table).schema is small_table.schema

    def test_stats(self, small_table):
        scan = TableScan(small_table)
        list(scan)
        assert scan.stats.rows_out == 10


class TestIndexScan:
    def test_descending_score_order(self, small_table):
        scan = IndexScan(small_table, small_table.get_index("T_score_idx"))
        scores = [r["T.score"] for r in scan]
        assert scores == sorted(scores, reverse=True)

    def test_score_spec_matches_index_key(self, small_table):
        scan = IndexScan(small_table, small_table.get_index("T_score_idx"))
        assert scan.score_spec.description == "T.score"
        row = next(iter(scan))
        assert scan.score_spec(row) == row["T.score"]

    def test_partial_consumption(self, small_table):
        scan = IndexScan(small_table, small_table.get_index("T_score_idx"))
        scan.open()
        first = scan.next()
        assert first["T.score"] == 0.9
        scan.close()
        assert scan.stats.rows_out == 1


class TestFilter:
    def test_predicate_applied(self, small_table):
        op = Filter(TableScan(small_table), lambda r: r["T.key"] == 0,
                    description="T.key = 0")
        rows = list(op)
        assert all(r["T.key"] == 0 for r in rows)
        assert len(rows) == 4

    def test_empty_result(self, small_table):
        op = Filter(TableScan(small_table), lambda r: False)
        assert list(op) == []

    def test_pull_counting(self, small_table):
        op = Filter(TableScan(small_table), lambda r: r["T.id"] < 3)
        list(op)
        assert op.stats.pulled[0] == 10  # Consumed everything.
        assert op.stats.rows_out == 3

    def test_describe(self, small_table):
        op = Filter(TableScan(small_table), lambda r: True,
                    description="true")
        assert "true" in op.describe()


class TestProject:
    def test_projection(self, small_table):
        op = Project(TableScan(small_table), ["T.id"])
        row = next(iter(op))
        assert row.as_dict() == {"T.id": 0}

    def test_schema_restricted(self, small_table):
        op = Project(TableScan(small_table), ["T.score", "T.id"])
        assert op.schema.qualified_names() == ("T.score", "T.id")

    def test_bare_names_resolve(self, small_table):
        op = Project(TableScan(small_table), ["score"])
        assert op.schema.qualified_names() == ("T.score",)

    def test_unknown_column_fails_at_build(self, small_table):
        with pytest.raises(SchemaError):
            Project(TableScan(small_table), ["T.zz"])
