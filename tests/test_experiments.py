"""Unit tests for the experiment harness."""

import pytest

from repro.common.errors import EstimationError
from repro.data.generators import generate_ranked_table
from repro.experiments.harness import (
    build_hrjn_pipeline,
    measure_depths,
    measure_pipeline_depths,
    realized_selectivity,
)
from repro.experiments.report import format_table, relative_error


class TestRealizedSelectivity:
    def test_exact_on_known_tables(self):
        left = generate_ranked_table("L", 100, selectivity=0.5, seed=1)
        right = generate_ranked_table("R", 100, selectivity=0.5, seed=2)
        s = realized_selectivity(left, right, "L.key", "R.key")
        # Domain of 2 keys: selectivity near 0.5.
        assert s == pytest.approx(0.5, abs=0.1)

    def test_empty_table(self):
        left = generate_ranked_table("L", 0, seed=1)
        right = generate_ranked_table("R", 10, seed=2)
        assert realized_selectivity(left, right, "L.key", "R.key") == 0.0


class TestMeasureDepths:
    def test_actual_bracketed_by_estimates(self):
        m = measure_depths(4000, 0.01, 50, seed=5)
        for side in (0, 1):
            assert m.any_k[side] <= m.actual[side] * 1.25
            assert m.actual[side] <= m.top_k[side] * 1.3

    def test_buffer_below_bounds(self):
        m = measure_depths(4000, 0.01, 50, seed=6)
        assert m.buffer_actual <= m.buffer_actual_bound * 1.05
        assert m.buffer_actual_bound <= m.buffer_estimated_bound * 1.5

    def test_invalid_k(self):
        with pytest.raises(EstimationError):
            measure_depths(100, 0.1, 0)

    def test_too_small_workload_detected(self):
        with pytest.raises(EstimationError, match="only"):
            measure_depths(10, 0.05, 500, seed=7)


class TestPipeline:
    def test_three_way_pipeline_runs(self):
        tables = [
            generate_ranked_table("T%d" % i, 300, selectivity=0.05,
                                  seed=10 + i)
            for i in range(3)
        ]
        rows, joins = build_hrjn_pipeline(
            tables,
            ["T0.key", "T1.key", "T2.key"],
            ["T0.score", "T1.score", "T2.score"],
            k=5,
        )
        assert len(rows) == 5
        assert len(joins) == 2

    def test_pipeline_needs_two_tables(self):
        table = generate_ranked_table("T0", 10, seed=1)
        with pytest.raises(EstimationError):
            build_hrjn_pipeline([table], ["T0.key"], ["T0.score"], 1)

    def test_measure_pipeline_records(self):
        records = measure_pipeline_depths(800, 0.05, 10, inputs=3, seed=2)
        assert len(records) == 2
        for _name, actual, estimate, required in records:
            assert len(actual) == 2 and len(estimate) == 2
            assert required >= 1


class TestReport:
    def test_relative_error(self):
        assert relative_error(100, 120) == pytest.approx(0.2)
        assert relative_error(0, 0) == 0.0
        assert relative_error(0, 5) == float("inf")

    def test_format_table(self):
        text = format_table(
            ["k", "actual", "estimate"],
            [[10, 33, 45.0], [100, 150, 141.4]],
            title="demo",
        )
        assert "demo" in text
        assert "k" in text.splitlines()[1]
        assert "141.4" in text
