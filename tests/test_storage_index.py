"""Unit tests for sorted access paths."""

import pytest

from repro.common.errors import CatalogError
from repro.storage.index import SortedIndex
from repro.storage.table import Table


def make_indexed_table(scores):
    table = Table.from_columns("T", [("id", "int"), ("score", "float")])
    for i, score in enumerate(scores):
        table.insert([i, score])
    index = SortedIndex("idx", "T.score")
    table.create_index(index)
    return table, index


class TestSortedAccess:
    def test_descending_order(self):
        _table, index = make_indexed_table([0.1, 0.9, 0.5])
        scores = [score for score, _row in index.sorted_access()]
        assert scores == [0.9, 0.5, 0.1]

    def test_ascending_option(self):
        table = Table.from_columns("T", [("score", "float")])
        for score in (0.3, 0.1, 0.2):
            table.insert([score])
        index = SortedIndex("asc", "T.score", descending=False)
        table.create_index(index)
        assert [s for s, _ in index.sorted_access()] == [0.1, 0.2, 0.3]

    def test_len(self):
        _table, index = make_indexed_table([0.1, 0.2])
        assert len(index) == 2

    def test_snapshot_iteration(self):
        table, index = make_indexed_table([0.5])
        iterator = index.sorted_access()
        table.insert([99, 0.9])
        assert [s for s, _ in iterator] == [0.5]
        assert index.top()[0] == 0.9


class TestProbes:
    def test_score_at_depth(self):
        _table, index = make_indexed_table([0.1, 0.9, 0.5])
        assert index.score_at_depth(1) == 0.9
        assert index.score_at_depth(3) == 0.1

    def test_score_at_depth_out_of_range(self):
        _table, index = make_indexed_table([0.1])
        with pytest.raises(CatalogError, match="out of range"):
            index.score_at_depth(2)

    def test_random_access(self):
        _table, index = make_indexed_table([0.1, 0.9])
        score, row = index.random_access(lambda r: r["T.id"] == 0)
        assert score == 0.1

    def test_random_access_miss(self):
        _table, index = make_indexed_table([0.1])
        assert index.random_access(lambda r: False) is None

    def test_top_empty(self):
        _table, index = make_indexed_table([])
        assert index.top() is None


class TestLifecycle:
    def test_callable_key_needs_description(self):
        with pytest.raises(CatalogError, match="key_description"):
            SortedIndex("bad", lambda row: 0.0)

    def test_callable_key(self):
        table = Table.from_columns("T", [("a", "float"), ("b", "float")])
        table.insert([0.2, 0.9])
        table.insert([0.8, 0.1])
        index = SortedIndex(
            "expr", lambda row: row["T.a"] + row["T.b"],
            key_description="T.a + T.b",
        )
        table.create_index(index)
        assert index.top()[0] == pytest.approx(1.1)

    def test_double_attach_rejected(self):
        table, index = make_indexed_table([0.5])
        other = Table.from_columns("U", [("score", "float")])
        with pytest.raises(CatalogError, match="already attached"):
            other.create_index(index)

    def test_detached_use_rejected(self):
        index = SortedIndex("idx", "T.score")
        with pytest.raises(CatalogError, match="not attached"):
            index.entries()
