"""Unit tests for the operator protocol and instrumentation."""

import pytest

from repro.common.errors import ExecutionError
from repro.common.types import Row
from repro.operators.base import Operator, OperatorStats, ScoreSpec
from repro.operators.scan import TableScan


class _Emitter(Operator):
    """Test operator emitting pre-baked rows."""

    def __init__(self, rows):
        super().__init__(children=(), name="Emitter")
        self._rows = rows
        self._position = 0

    @property
    def schema(self):
        return None

    def _open(self):
        self._position = 0

    def _next(self):
        if self._position >= len(self._rows):
            return None
        row = self._rows[self._position]
        self._position += 1
        return row


class TestLifecycle:
    def test_iteration_runs_lifecycle(self):
        op = _Emitter([Row({"x": 1}), Row({"x": 2})])
        assert [r["x"] for r in op] == [1, 2]
        assert op.stats.rows_out == 2
        assert op.stats.opens == 1

    def test_next_before_open_rejected(self):
        with pytest.raises(ExecutionError, match="not open"):
            _Emitter([]).next()

    def test_double_open_rejected(self):
        op = _Emitter([])
        op.open()
        with pytest.raises(ExecutionError, match="already open"):
            op.open()

    def test_close_idempotent(self):
        op = _Emitter([])
        op.close()  # Not open: no-op.
        op.open()
        op.close()
        op.close()

    def test_reiteration_after_close(self, small_table):
        scan = TableScan(small_table)
        assert len(list(scan)) == 10
        scan.reset_stats()
        assert len(list(scan)) == 10


class TestStats:
    def test_counters_shape(self):
        stats = OperatorStats(2)
        assert stats.pulled == [0, 0]
        stats.note_buffer(5)
        stats.note_buffer(3)
        assert stats.max_buffer == 5

    def test_reset(self):
        stats = OperatorStats(1)
        stats.rows_out = 3
        stats.pulled[0] = 9
        stats.reset()
        assert stats.rows_out == 0
        assert stats.pulled == [0]

    def test_as_dict(self):
        stats = OperatorStats(1)
        assert stats.as_dict() == {
            "rows_out": 0, "pulled": [0], "max_buffer": 0, "opens": 0,
        }

    def test_walk_and_explain(self, small_table):
        scan = TableScan(small_table)
        assert list(scan.walk()) == [scan]
        assert "TableScan(T)" in scan.explain()


class TestScoreSpec:
    def test_column_spec(self):
        spec = ScoreSpec.column("T.score")
        assert spec(Row({"T.score": 0.7})) == 0.7
        assert spec.description == "T.score"

    def test_callable_spec(self):
        spec = ScoreSpec(lambda row: row["a"] * 2, "2*a")
        assert spec(Row({"a": 3})) == 6

    def test_callable_needs_description(self):
        with pytest.raises(ExecutionError):
            ScoreSpec(lambda row: 0.0, None)

    def test_invalid_accessor(self):
        with pytest.raises(ExecutionError):
            ScoreSpec(42, "x")
