"""The optimizer's "empirical" estimation mode on skewed workloads.

On zipf-distributed scores the closed forms wildly under-estimate
rank-join depths, making rank-join plans look far cheaper than they
are; the empirical mode reads the real score-gap profile and corrects
the cost.
"""

import pytest

from repro.data.generators import generate_ranked_table
from repro.cost.model import CostModel
from repro.executor.executor import Executor
from repro.optimizer.enumerator import Optimizer, OptimizerConfig
from repro.optimizer.expressions import ScoreExpression
from repro.optimizer.plans import RankJoinPlan
from repro.optimizer.query import JoinPredicate, RankQuery
from repro.storage.catalog import Catalog


def make_catalog(distribution, n=2000, seed=91):
    catalog = Catalog()
    for name, offset in (("L", 0), ("R", 1)):
        catalog.register(generate_ranked_table(
            name, n, selectivity=0.01, distribution=distribution,
            seed=seed + offset,
        ))
    catalog.analyze()
    return catalog


def query(k=25):
    return RankQuery(
        tables=("L", "R"),
        predicates=[JoinPredicate("L.key", "R.key")],
        ranking=ScoreExpression({"L.score": 1.0, "R.score": 1.0}),
        k=k,
    )


def rank_plan(catalog, mode):
    optimizer = Optimizer(
        catalog, CostModel(),
        OptimizerConfig(estimation_mode=mode, enable_nrjn=False),
    )
    memo = optimizer.build_memo(query())
    plans = [p for p in memo.entry(frozenset(("L", "R")))
             if isinstance(p, RankJoinPlan)]
    assert plans
    return plans[0], optimizer


class TestEmpiricalMode:
    def test_profiles_attached_on_leaf_rank_joins(self):
        catalog = make_catalog("uniform")
        plan, _opt = rank_plan(catalog, "empirical")
        assert all(p is not None for p in plan.profiles)

    def test_average_mode_has_no_profiles(self):
        catalog = make_catalog("uniform")
        plan, _opt = rank_plan(catalog, "average")
        assert plan.profiles == (None, None)

    def test_uniform_modes_agree_roughly(self):
        catalog = make_catalog("uniform")
        empirical_plan, _ = rank_plan(catalog, "empirical")
        average_plan, _ = rank_plan(catalog, "average")
        e = empirical_plan.depth_estimate(25).d_left
        a = average_plan.depth_estimate(25).d_left
        assert e == pytest.approx(a, rel=1.0)

    def test_zipf_empirical_depths_far_larger(self):
        """On zipf scores the empirical mode sees the truth the closed
        form misses by an order of magnitude."""
        catalog = make_catalog("zipf")
        empirical_plan, _ = rank_plan(catalog, "empirical")
        average_plan, _ = rank_plan(catalog, "average")
        e = empirical_plan.depth_estimate(25).d_left
        a = average_plan.depth_estimate(25).d_left
        assert e > 5 * a

    def test_zipf_cost_reflects_reality(self):
        """Measured depth on zipf is huge; the empirical-mode cost
        estimate tracks it while average mode does not."""
        from repro.operators.hrjn import HRJN
        from repro.operators.scan import IndexScan
        from repro.operators.topk import Limit

        catalog = make_catalog("zipf")
        left = catalog.table("L")
        right = catalog.table("R")
        rank_join = HRJN(
            IndexScan(left, left.get_index("L_score_idx")),
            IndexScan(right, right.get_index("R_score_idx")),
            "L.key", "R.key", "L.score", "R.score", name="RJ",
        )
        list(Limit(rank_join, 25))
        actual = sum(rank_join.depths) / 2.0
        empirical_plan, _ = rank_plan(catalog, "empirical")
        estimate = empirical_plan.depth_estimate(25).d_left
        assert estimate == pytest.approx(actual, rel=1.5)

    def test_execution_identical_across_modes(self):
        catalog = make_catalog("zipf")
        answers = []
        for mode in ("average", "empirical"):
            executor = Executor(
                catalog, CostModel(),
                OptimizerConfig(estimation_mode=mode),
            )
            report = executor.run(query())
            answers.append(tuple(
                round(r["L.score"] + r["R.score"], 9)
                for r in report.rows
            ))
        assert answers[0] == answers[1]
