"""Smoke tests: every shipped example must run end to end."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def load_module(filename):
    path = EXAMPLES_DIR / filename
    spec = importlib.util.spec_from_file_location(
        "example_%s" % (path.stem,), path,
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_six_examples_shipped(self):
        assert len(EXAMPLES) >= 6
        assert "quickstart.py" in EXAMPLES

    @pytest.mark.parametrize("filename", EXAMPLES)
    def test_example_runs(self, filename, capsys):
        module = load_module(filename)
        assert hasattr(module, "main"), (
            "%s must expose a main()" % (filename,)
        )
        module.main()
        out = capsys.readouterr().out
        assert out.strip(), "%s produced no output" % (filename,)
