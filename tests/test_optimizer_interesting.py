"""Unit tests for interesting order collection, including Table 1."""

from repro.optimizer.expressions import ScoreExpression
from repro.optimizer.interesting import (
    collect_interesting_orders,
    interesting_orders_for_tables,
)
from repro.optimizer.query import JoinPredicate, RankQuery


def query_q2():
    """The paper's Q2: rank on 0.3*A.c1+0.3*B.c1+0.3*C.c1,
    joins A.c2 = B.c1 and B.c2 = C.c2."""
    return RankQuery(
        tables="ABC",
        predicates=[JoinPredicate("A.c2", "B.c1"),
                    JoinPredicate("B.c2", "C.c2")],
        ranking=ScoreExpression({"A.c1": 0.3, "B.c1": 0.3, "C.c1": 0.3}),
        k=5,
    )


class TestTableOne:
    """Reproduces Table 1 (with the paper's typos corrected: the
    pairwise restrictions of the Q2 ranking function are over c1
    columns)."""

    def test_full_listing(self):
        orders = collect_interesting_orders(query_q2())
        listing = {
            io.expression.description(): io.reasons for io in orders
        }
        assert listing == {
            "A.c1": ("Rank-join",),
            "A.c2": ("Join",),
            "B.c1": ("Join", "Rank-join"),
            "B.c2": ("Join",),
            "C.c1": ("Rank-join",),
            "C.c2": ("Join",),
            "0.3*A.c1 + 0.3*B.c1": ("Rank-join",),
            "0.3*B.c1 + 0.3*C.c1": ("Rank-join",),
            "0.3*A.c1 + 0.3*C.c1": ("Rank-join",),
            "0.3*A.c1 + 0.3*B.c1 + 0.3*C.c1": ("Orderby",),
        }

    def test_row_count_matches_paper(self):
        assert len(collect_interesting_orders(query_q2())) == 10

    def test_b_c1_has_both_reasons(self):
        """B.c1 serves the join (A.c2 = B.c1) AND the ranking."""
        orders = collect_interesting_orders(query_q2())
        by_desc = {io.expression.description(): io for io in orders}
        assert by_desc["B.c1"].reasons == ("Join", "Rank-join")

    def test_traditional_mode_drops_rank_orders(self):
        orders = collect_interesting_orders(query_q2(), rank_aware=False)
        descriptions = {io.expression.description() for io in orders}
        assert descriptions == {"A.c2", "B.c1", "B.c2", "C.c2"}

    def test_order_by_column_collected(self):
        query = RankQuery(
            tables="AB", predicates=[JoinPredicate("A.c1", "B.c1")],
            order_by="A.c2",
        )
        orders = collect_interesting_orders(query)
        reasons = {io.expression.description(): io.reasons for io in orders}
        assert reasons["A.c2"] == ("Orderby",)


class TestPerEntryRetention:
    def test_leaf_entry_rank_aware(self):
        orders = interesting_orders_for_tables(query_q2(), {"A"})
        descriptions = {io.expression.description() for io in orders}
        assert descriptions == {"A.c1", "A.c2"}

    def test_leaf_entry_merged_reasons(self):
        orders = interesting_orders_for_tables(query_q2(), {"B"})
        by_desc = {io.expression.description(): io.reasons for io in orders}
        # B.c1 is both a pending join column and the rank restriction.
        assert set(by_desc) == {"B.c1", "B.c2"}
        assert "Join" in by_desc["B.c1"] and "Rank-join" in by_desc["B.c1"]

    def test_pair_entry(self):
        orders = interesting_orders_for_tables(query_q2(), {"A", "B"})
        descriptions = {io.expression.description() for io in orders}
        assert descriptions == {"B.c2", "0.3*A.c1 + 0.3*B.c1"}

    def test_join_columns_retire(self):
        """A.c2 retires once both its tables are inside the entry."""
        orders = interesting_orders_for_tables(query_q2(), {"A", "B"})
        assert "A.c2" not in {io.expression.description() for io in orders}

    def test_root_entry_orderby_reason(self):
        orders = interesting_orders_for_tables(query_q2(), {"A", "B", "C"})
        by_desc = {io.expression.description(): io.reasons for io in orders}
        assert by_desc == {
            "0.3*A.c1 + 0.3*B.c1 + 0.3*C.c1": ("Orderby",),
        }

    def test_traditional_mode_per_entry(self):
        orders = interesting_orders_for_tables(
            query_q2(), {"A"}, rank_aware=False,
        )
        assert {io.expression.description() for io in orders} == {"A.c2"}
