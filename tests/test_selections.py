"""Tests for single-table selection predicates through the full stack."""

import pytest

from repro.common.errors import OptimizerError, ParseError
from repro.common.rng import make_rng
from repro.executor.database import Database
from repro.optimizer.query import FilterPredicate
from repro.sql.parser import parse_query
from repro.storage.stats import ColumnStats


class TestFilterPredicate:
    def test_matches(self):
        from repro.common.types import Row

        predicate = FilterPredicate("A.c2", "<=", 5)
        assert predicate.matches(Row({"A.c2": 5}))
        assert not predicate.matches(Row({"A.c2": 6}))

    def test_invalid_operator(self):
        with pytest.raises(OptimizerError):
            FilterPredicate("A.c2", "!=", 5)

    def test_unqualified_column_rejected(self):
        with pytest.raises(OptimizerError):
            FilterPredicate("c2", "<", 5)

    def test_range_selectivity(self):
        stats = ColumnStats.from_values("A.c2", list(range(101)))
        # Histogram-backed: exact value counts, not the uniform span.
        assert FilterPredicate("A.c2", "<=", 50).selectivity(stats) == (
            pytest.approx(51 / 101, abs=0.02)
        )
        assert FilterPredicate("A.c2", ">=", 75).selectivity(stats) == (
            pytest.approx(26 / 101, abs=0.03)
        )

    def test_range_selectivity_uniform_fallback(self):
        stats = ColumnStats.from_values(
            "A.c2", list(range(101)), histogram_buckets=0,
        )
        assert FilterPredicate("A.c2", "<=", 50).selectivity(stats) == (
            pytest.approx(0.5)
        )

    def test_equality_selectivity(self):
        stats = ColumnStats.from_values("A.c2", [1, 2, 3, 4])
        assert FilterPredicate("A.c2", "=", 2).selectivity(stats) == (
            pytest.approx(0.25)
        )

    def test_selectivity_clamped(self):
        stats = ColumnStats.from_values("A.c2", [0.0, 1.0])
        assert FilterPredicate("A.c2", "<=", 5.0).selectivity(stats) == 1.0
        assert FilterPredicate("A.c2", "<=", -1.0).selectivity(stats) == 0.0


class TestParserFilters:
    def test_filter_in_plain_where(self):
        query = parse_query(
            "SELECT A.c1 FROM A, B WHERE A.c2 = B.c2 AND A.c1 >= 0.5",
        )
        assert len(query.predicates) == 1
        assert len(query.filters) == 1
        assert query.filters[0].op == ">="

    def test_filter_in_cte_where(self):
        query = parse_query("""
            WITH R AS (
              SELECT A.c1 AS x, rank() OVER (ORDER BY (A.c1 + B.c1)) AS r
              FROM A, B WHERE A.c2 = B.c2 AND B.c2 < 3)
            SELECT x, r FROM R WHERE r <= 5""")
        assert len(query.filters) == 1
        assert query.filters[0].column == "B.c2"

    def test_column_to_column_inequality_rejected(self):
        with pytest.raises(ParseError, match="must use ="):
            parse_query("SELECT A.c1 FROM A, B WHERE A.c2 < B.c2")

    def test_unknown_filter_table_rejected(self):
        with pytest.raises(OptimizerError):
            parse_query("SELECT A.c1 FROM A WHERE Z.c1 <= 5")


def make_db(rows=400, seed=6, domain=10):
    rng = make_rng(seed)
    db = Database()
    for name in ("A", "B"):
        db.create_table(
            name, [("c1", "float"), ("c2", "int")],
            rows=[[float(rng.uniform(0, 1)), int(rng.integers(0, domain))]
                  for _ in range(rows)],
        )
    db.analyze()
    return db


FILTERED_SQL = """
WITH R AS (
  SELECT A.c1 AS x, B.c1 AS y,
         rank() OVER (ORDER BY (A.c1 + B.c1)) AS rank
  FROM A, B WHERE A.c2 = B.c2 AND A.c2 <= 4)
SELECT x, y, rank FROM R WHERE rank <= 10
"""


class TestEndToEndSelections:
    def brute_force(self, db, k):
        results = []
        for a in db.catalog.table("A").scan():
            if a["A.c2"] > 4:
                continue
            for b in db.catalog.table("B").scan():
                if a["A.c2"] == b["B.c2"]:
                    results.append(a["A.c1"] + b["B.c1"])
        results.sort(reverse=True)
        return [round(v, 9) for v in results[:k]]

    def test_filtered_topk_matches_brute_force(self):
        db = make_db()
        report = db.execute(FILTERED_SQL)
        got = [round(r["A.c1"] + r["B.c1"], 9) for r in report.rows]
        assert got == self.brute_force(db, 10)

    def test_plan_contains_filter(self):
        db = make_db()
        result = db.explain(FILTERED_SQL)
        assert "Filter" in result.best_plan.explain()

    def test_filter_reduces_plan_cardinality(self):
        db = make_db()
        result = db.explain(FILTERED_SQL)
        unfiltered = db.explain("""
            WITH R AS (
              SELECT A.c1 AS x, B.c1 AS y,
                     rank() OVER (ORDER BY (A.c1 + B.c1)) AS rank
              FROM A, B WHERE A.c2 = B.c2)
            SELECT x, y, rank FROM R WHERE rank <= 10""")
        assert (result.best_plan.cardinality
                < unfiltered.best_plan.cardinality)

    def test_rank_join_survives_filter(self):
        """The filtered ranked stream still feeds a rank-join: the
        filter preserves the descending score order."""
        db = make_db(rows=1500)
        report = db.execute(FILTERED_SQL)
        kinds = {snap.name.split("(")[0] for snap in report.operators}
        assert kinds & {"HRJN1", "NRJN1", "HRJN2", "NRJN2"} or any(
            name.startswith(("HRJN", "NRJN")) for name in kinds
        )

    def test_filter_deepens_rank_join_depth(self):
        """Selection thins the ranked stream, so the rank-join must dig
        deeper into the base input for the same k."""
        db = make_db(rows=2000)
        filtered = db.execute(FILTERED_SQL)
        plain = db.execute("""
            WITH R AS (
              SELECT A.c1 AS x, B.c1 AS y,
                     rank() OVER (ORDER BY (A.c1 + B.c1)) AS rank
              FROM A, B WHERE A.c2 = B.c2)
            SELECT x, y, rank FROM R WHERE rank <= 10""")
        depth = lambda rep: max(
            (sum(s.pulled) for s in rep.operators
             if s.name.startswith(("HRJN", "NRJN"))), default=0,
        )
        scans = lambda rep: sum(
            (s.rows_out for s in rep.operators
             if s.name.startswith(("IndexScan", "TableScan", "Scan"))),
        )
        assert scans(filtered) >= scans(plain) * 0.5  # Sanity only.
        assert depth(filtered) > 0 and depth(plain) > 0
