"""Shared fixtures for the test suite."""

import pytest

from repro.common.rng import make_rng
from repro.cost.model import CostModel
from repro.storage.index import SortedIndex
from repro.storage.table import Table


@pytest.fixture
def rng():
    return make_rng(12345)


@pytest.fixture
def small_table():
    """Table T with deterministic contents: id 0..9, score 0.9..0.0."""
    table = Table.from_columns(
        "T", [("id", "int"), ("key", "int"), ("score", "float")]
    )
    for i in range(10):
        table.insert([i, i % 3, (9 - i) / 10.0])
    table.create_index(SortedIndex("T_score_idx", "T.score"))
    return table


# Shared with the report generator and benchmarks.
from repro.data.catalogs import make_abc_catalog  # noqa: E402,F401


@pytest.fixture
def abc_catalog():
    return make_abc_catalog()


@pytest.fixture
def cost_model():
    return CostModel()
