"""Unit tests for synthetic data generation."""

import numpy as np
import pytest

from repro.common.errors import EstimationError
from repro.data.generators import (
    generate_join_keys,
    generate_ranked_table,
    generate_scores,
    selectivity_to_domain,
)


class TestScores:
    def test_uniform_range(self):
        scores = generate_scores(1000, "uniform", high=2.0, seed=1)
        assert len(scores) == 1000
        assert scores.min() >= 0.0
        assert scores.max() <= 2.0

    def test_deterministic(self):
        a = generate_scores(100, seed=9)
        b = generate_scores(100, seed=9)
        assert np.array_equal(a, b)

    def test_sum_uniform_range(self):
        scores = generate_scores(500, "sum_uniform", high=1.0, seed=2,
                                 components=3)
        assert scores.max() <= 3.0
        assert scores.min() >= 0.0

    def test_sum_uniform_mean_matches_clt(self):
        scores = generate_scores(20000, "sum_uniform", high=1.0, seed=3,
                                 components=4)
        assert scores.mean() == pytest.approx(2.0, abs=0.05)

    def test_triangular(self):
        scores = generate_scores(500, "triangular", high=1.0, seed=4)
        assert 0.0 <= scores.min() and scores.max() <= 2.0

    def test_gaussian_non_negative(self):
        scores = generate_scores(500, "gaussian", seed=5)
        assert scores.min() >= 0.0

    def test_zipf_shape(self):
        scores = generate_scores(100, "zipf", high=1.0, seed=6)
        ordered = np.sort(scores)[::-1]
        assert ordered[0] == pytest.approx(1.0)
        assert ordered[-1] == pytest.approx(1.0 / 100)

    def test_unknown_distribution(self):
        with pytest.raises(EstimationError):
            generate_scores(10, "pareto")

    def test_negative_count(self):
        with pytest.raises(EstimationError):
            generate_scores(-1)


class TestKeys:
    def test_domain_from_selectivity(self):
        assert selectivity_to_domain(0.01) == 100
        assert selectivity_to_domain(1.0) == 1

    def test_bad_selectivity(self):
        with pytest.raises(EstimationError):
            selectivity_to_domain(0.0)
        with pytest.raises(EstimationError):
            selectivity_to_domain(1.5)

    def test_keys_within_domain(self):
        keys = generate_join_keys(1000, 0.1, seed=1)
        assert keys.min() >= 0
        assert keys.max() < 10

    def test_realized_selectivity_close(self):
        keys_left = generate_join_keys(2000, 0.02, seed=1)
        keys_right = generate_join_keys(2000, 0.02, seed=2)
        counts = np.bincount(keys_left, minlength=50)
        matches = counts[keys_right].sum()
        realized = matches / (2000 * 2000)
        assert realized == pytest.approx(0.02, rel=0.15)


class TestRankedTable:
    def test_structure(self):
        table = generate_ranked_table("X", 50, selectivity=0.1, seed=1)
        assert table.cardinality == 50
        assert table.schema.qualified_names() == (
            "X.id", "X.key", "X.score",
        )
        index = table.get_index("X_score_idx")
        scores = [s for s, _ in index.sorted_access()]
        assert scores == sorted(scores, reverse=True)

    def test_extra_columns(self):
        table = generate_ranked_table(
            "X", 10, seed=1,
            extra_columns=[("bonus", lambda rng, n: rng.uniform(0, 1, n))],
        )
        assert "X.bonus" in table.schema
