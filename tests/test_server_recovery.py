"""Server-level crash recovery: admission journal + durable resume.

Pins the serving acceptance scenario of the durability layer: a server
running with a ``state_dir`` journals every admission and persists
instalment suspensions; after a crash (modelled as a drained server
whose process state is thrown away), a *fresh* server over the same
directory replays the journal, re-admits the unfinished queries, and
continues them byte-identically from their last durable snapshot --
falling back to a journalled-SQL restart (recovery path
``"restarted"``) when every snapshot is corrupt.
"""

import asyncio
import json
import os

import pytest

from repro.common.rng import make_rng
from repro.executor.database import Database
from repro.optimizer.enumerator import OptimizerConfig
from repro.robustness.durability import _HEADER, CheckpointStore
from repro.server import AdmissionJournal, SchedulerConfig, Server
from repro.server.session import COMPLETED, DRAINED

SQL = """
WITH Ranked AS (
  SELECT A.c1 AS x, B.c2 AS y,
         rank() OVER (ORDER BY (0.3*A.c1 + 0.7*B.c2)) AS rank
  FROM A, B WHERE A.c2 = B.c1)
SELECT x, y, rank FROM Ranked WHERE rank <= 5
"""

#: Same shape at k=40 -- expensive enough to span many instalments.
BIG_SQL = SQL.replace("rank <= 5", "rank <= 40")


def hrjn_db(rows=400, seed=3, domain=15):
    # NRJN materialises its inner inside open() -- one atomic step no
    # instalment can split -- so recovery tests that need incremental
    # progress pin the fully pipelined HRJN.
    rng = make_rng(seed)
    db = Database(config=OptimizerConfig(enable_nrjn=False))
    db.create_table("A", [("c1", "float"), ("c2", "int")], rows=[
        [float(rng.uniform(0, 1)), int(rng.integers(0, domain))]
        for _ in range(rows)
    ])
    db.create_table("B", [("c1", "int"), ("c2", "float")], rows=[
        [int(rng.integers(0, domain)), float(rng.uniform(0, 1))]
        for _ in range(rows)
    ])
    db.analyze()
    return db


# ----------------------------------------------------------------------
# The admission journal
# ----------------------------------------------------------------------
class TestAdmissionJournal:
    def test_replay_diffs_submissions_against_terminals(self, tmp_path):
        journal = AdmissionJournal(tmp_path / "journal.jsonl",
                                   fsync=False)
        journal.record_submitted("q1", "SELECT 1", "alice",
                                 "interactive")
        journal.record_submitted("q2", "SELECT 2", "bob", "batch")
        journal.record_suspended("q2", rows_streamed=7)
        journal.record_terminal("q1", "completed")
        pending = journal.replay()
        assert list(pending) == ["q2"]
        entry = pending["q2"]
        assert entry["sql"] == "SELECT 2"
        assert entry["tenant"] == "bob"
        assert entry["queue_class"] == "batch"
        assert entry["suspended"] is True
        assert entry["rows_streamed"] == 7

    def test_directory_path_places_journal_inside(self, tmp_path):
        journal = AdmissionJournal(tmp_path, fsync=False)
        assert journal.path == str(tmp_path / "journal.jsonl")

    def test_torn_trailing_line_skipped_and_counted(self, tmp_path):
        journal = AdmissionJournal(tmp_path / "journal.jsonl",
                                   fsync=False)
        journal.record_submitted("q1", "SELECT 1", "alice", "batch")
        with open(journal.path, "a") as handle:
            handle.write('{"event": "termi')  # the crash mid-append
        pending = journal.replay()
        assert list(pending) == ["q1"]
        assert journal.skipped_lines == 1

    def test_unknown_event_counted_not_fatal(self, tmp_path):
        journal = AdmissionJournal(tmp_path / "journal.jsonl",
                                   fsync=False)
        with open(journal.path, "w") as handle:
            handle.write(json.dumps(
                {"event": "mystery", "query_id": "q9"}) + "\n")
            handle.write(json.dumps(["not", "an", "object"]) + "\n")
        assert journal.replay() == {}
        assert journal.skipped_lines == 2

    def test_reset_truncates_atomically(self, tmp_path):
        journal = AdmissionJournal(tmp_path / "journal.jsonl",
                                   fsync=False)
        journal.record_submitted("q1", "SELECT 1", "alice", "batch")
        journal.reset()
        assert journal.replay() == {}
        assert os.path.getsize(journal.path) == 0
        assert not os.path.exists(journal.path + ".tmp")

    def test_replay_of_missing_file_is_empty(self, tmp_path):
        journal = AdmissionJournal(tmp_path / "journal.jsonl",
                                   fsync=False)
        assert journal.replay() == {}


# ----------------------------------------------------------------------
# Crash / restart cycles
# ----------------------------------------------------------------------
def drain_midflight(state_dir, instalment_pulls=50):
    """Phase 1 of the crash model: submit the big query, let it make
    incremental progress, then drain -- leaving journal + snapshots
    behind exactly as a killed process would."""

    async def phase():
        db = hrjn_db()
        config = SchedulerConfig(instalment_pulls=instalment_pulls)
        server = Server(db, scheduler=config, state_dir=state_dir)
        server.start()
        session = await server.submit(BIG_SQL, tenant="analytics")
        for _ in range(500):
            await asyncio.sleep(0.005)
            if session.stats["instalments"] >= 2:
                break
        await server.drain()
        return session

    return asyncio.run(phase())


def recover_and_finish(state_dir, instalment_pulls=400):
    """Phase 2: a fresh server over the same directory recovers and
    runs every re-admitted query to completion."""

    async def phase():
        db = hrjn_db()
        config = SchedulerConfig(instalment_pulls=instalment_pulls)
        server = Server(db, scheduler=config, state_dir=state_dir)
        server.start()
        sessions = await server.recover()
        reports = [await session.result() for session in sessions]
        await server.drain()
        return db, sessions, reports

    return asyncio.run(phase())


@pytest.mark.timeout(120)
class TestServerCrashRecovery:
    def test_drain_leaves_durable_state_behind(self, tmp_path):
        state_dir = str(tmp_path / "state")
        session = drain_midflight(state_dir)
        assert session.state == DRAINED
        assert session.query_id is not None
        store = CheckpointStore(state_dir)
        assert store.query_ids() == [session.query_id]
        pending = AdmissionJournal(state_dir).replay()
        assert list(pending) == [session.query_id]
        assert pending[session.query_id]["suspended"] is True
        assert pending[session.query_id]["tenant"] == "analytics"

    def test_fresh_server_resumes_byte_identically(self, tmp_path):
        clean = hrjn_db().execute_guarded(BIG_SQL)
        state_dir = str(tmp_path / "state")
        drained = drain_midflight(state_dir)
        db, sessions, reports = recover_and_finish(state_dir)
        assert len(sessions) == 1
        session, report = sessions[0], reports[0]
        assert session.state == COMPLETED
        assert session.query_id == drained.query_id
        assert report.rows == clean.rows
        assert report.recovery.path == "resumed"
        # The resumed instalment continued from the durable snapshot:
        # its fresh guard pulled strictly less than a from-scratch run.
        assert (report.recovery.stats["pulled_total"]
                < clean.recovery.stats["pulled_total"])
        recoveries = db.metrics.counter("durability_recoveries_total")
        assert recoveries.value(outcome="resumed") == 1

    def test_completion_cleans_up_durable_state(self, tmp_path):
        state_dir = str(tmp_path / "state")
        drain_midflight(state_dir)
        recover_and_finish(state_dir)
        assert CheckpointStore(state_dir).query_ids() == []
        assert AdmissionJournal(state_dir).replay() == {}
        leftovers = [name for name in os.listdir(state_dir)
                     if name != "journal.jsonl"]
        assert leftovers == []

    def test_completed_queries_are_not_recovered(self, tmp_path):
        state_dir = str(tmp_path / "state")

        async def phase1():
            server = Server(hrjn_db(), state_dir=state_dir)
            server.start()
            session = await server.submit(SQL)
            await session.result()
            await server.drain()

        asyncio.run(phase1())
        _db, sessions, _reports = recover_and_finish(state_dir)
        assert sessions == []

    def test_corrupt_snapshots_restart_from_journalled_sql(
            self, tmp_path):
        clean = hrjn_db().execute_guarded(BIG_SQL)
        state_dir = str(tmp_path / "state")
        drain_midflight(state_dir)
        store = CheckpointStore(state_dir)
        (query_id,) = store.query_ids()
        for path in store.snapshots(query_id):
            with open(path, "r+b") as handle:
                handle.seek(_HEADER.size + 3)
                byte = handle.read(1)
                handle.seek(_HEADER.size + 3)
                handle.write(bytes([byte[0] ^ 0x08]))
        db, sessions, reports = recover_and_finish(state_dir)
        assert len(sessions) == 1
        assert sessions[0].state == COMPLETED
        report = reports[0]
        assert report.rows == clean.rows
        assert report.recovery.path == "restarted"
        recoveries = db.metrics.counter("durability_recoveries_total")
        assert recoveries.value(outcome="restarted") == 1
        corruptions = db.metrics.counter("durability_corruptions_total")
        assert corruptions.value(kind="checksum") >= 1

    def test_recover_without_state_dir_is_a_noop(self):
        async def main():
            server = Server(hrjn_db())
            server.start()
            recovered = await server.recover()
            await server.drain()
            return recovered

        assert asyncio.run(main()) == []

    def test_recovery_survives_a_second_crash(self, tmp_path):
        """Recover, drain again mid-flight, recover again: the query
        still completes byte-identically on the third process."""
        clean = hrjn_db().execute_guarded(BIG_SQL)
        state_dir = str(tmp_path / "state")
        drain_midflight(state_dir)

        async def crash_again():
            db = hrjn_db()
            config = SchedulerConfig(instalment_pulls=40)
            server = Server(db, scheduler=config, state_dir=state_dir)
            server.start()
            sessions = await server.recover()
            for _ in range(500):
                await asyncio.sleep(0.005)
                if sessions[0].stats["instalments"] >= 1:
                    break
            await server.drain()
            return sessions[0]

        middle = asyncio.run(crash_again())
        assert middle.state in (DRAINED, COMPLETED)
        _db, sessions, reports = recover_and_finish(state_dir)
        if middle.state == DRAINED:
            assert len(sessions) == 1
            assert reports[0].rows == clean.rows
        else:  # finished during the middle process
            assert sessions == []
