"""Unit tests for the video-similarity workload generator."""

import pytest

from repro.common.errors import EstimationError
from repro.data.video import DEFAULT_FEATURES, make_video_workload
from repro.experiments.harness import realized_selectivity


class TestVideoWorkload:
    def test_default_features(self):
        workload = make_video_workload(100, seed=1)
        assert workload.features == DEFAULT_FEATURES
        for feature in workload.features:
            assert workload.table(feature).cardinality == 100

    def test_key_join_regime(self):
        workload = make_video_workload(50, key_join=True, seed=1)
        assert workload.selectivity == pytest.approx(1 / 50)
        # Every relation ranks the same object ids.
        ids = {row["ColorHist.object_id"]
               for row in workload.table("ColorHist").scan()}
        assert ids == set(range(50))

    def test_selectivity_regime(self):
        workload = make_video_workload(
            500, features=("F1", "F2"), selectivity=0.05, seed=2,
        )
        realized = realized_selectivity(
            workload.table("F1"), workload.table("F2"),
            "F1.object_id", "F2.object_id",
        )
        assert realized == pytest.approx(0.05, rel=0.25)

    def test_catalog_selectivity_override(self):
        workload = make_video_workload(
            100, features=("F1", "F2"), selectivity=0.1, seed=3,
        )
        assert workload.catalog.join_selectivity(
            "F1", "F1.object_id", "F2", "F2.object_id",
        ) == pytest.approx(0.1)

    def test_score_index_exists(self):
        workload = make_video_workload(30, seed=4)
        index = workload.score_index("Texture")
        scores = [s for s, _ in index.sorted_access()]
        assert scores == sorted(scores, reverse=True)

    def test_empty_features_rejected(self):
        with pytest.raises(EstimationError):
            make_video_workload(10, features=())

    def test_zero_cardinality_rejected(self):
        with pytest.raises(EstimationError):
            make_video_workload(0)

    def test_column_helpers(self):
        workload = make_video_workload(10, seed=5)
        assert workload.score_column("Edges") == "Edges.score"
        assert workload.key_column("Edges") == "Edges.object_id"
