"""Explicit eligibility gating for sharded parallel alternatives.

``sharding_eligible`` is the one rule deciding which plan roots get a
sharded ScoreMerge alternative: binary single-predicate HRJN only.
These tests pin the gate down for every other root -- NRJN, multi-way
any-k plans -- so new blocking operators are skipped cleanly rather
than mis-sharded, and prove the positive path still produces the
ScoreMerge alternative for an eligible HRJN over hash-co-located
shards.
"""

import pytest

from repro.common.rng import make_rng
from repro.cost.model import CostModel
from repro.executor.database import Database
from repro.optimizer.enumerator import OptimizerConfig
from repro.optimizer.expressions import ScoreExpression
from repro.optimizer.parallel import (
    apply_parallel_mode,
    parallel_alternative,
    sharding_eligible,
)
from repro.optimizer.plans import (
    AccessPlan,
    AnyKPlan,
    RankJoinPlan,
    ScoreMergePlan,
)
from repro.optimizer.properties import OrderProperty
from repro.optimizer.query import JoinPredicate, RankQuery


@pytest.fixture
def model():
    return CostModel()


def ordered_access(model, name, n=1000):
    return AccessPlan(
        model, name, n, order=OrderProperty.on("%s.c1" % name),
        index_name="%s_c1_idx" % name,
    )


def rank_join(model, operator="hrjn", predicates=None):
    left = ordered_access(model, "A")
    right = ordered_access(model, "B")
    left_expr = ScoreExpression.single("A.c1")
    right_expr = ScoreExpression.single("B.c1")
    return RankJoinPlan(
        model, operator, left, right,
        predicates or [JoinPredicate("A.c2", "B.c2")],
        0.01, left_expr, right_expr, left_expr.combine(right_expr),
    )


def anyk_plan(model):
    children = [AccessPlan(model, name, 1000) for name in "ABC"]
    expressions = [ScoreExpression.single("%s.c1" % name)
                   for name in "ABC"]
    combined = expressions[0].combine(expressions[1]) \
        .combine(expressions[2])
    return AnyKPlan(
        model, children,
        [JoinPredicate("A.c2", "B.c2"), JoinPredicate("B.c3", "C.c3")],
        [None, (0, (("B.c2", "A.c2"),)), (1, (("C.c3", "B.c3"),))],
        0.01, combined, expressions,
    )


class TestShardingEligible:
    def test_single_predicate_hrjn_is_eligible(self, model):
        assert sharding_eligible(rank_join(model))

    def test_nrjn_is_not_eligible(self, model):
        assert not sharding_eligible(rank_join(model, operator="nrjn"))

    def test_multi_predicate_rank_join_is_not_eligible(self, model):
        plan = rank_join(model, predicates=[
            JoinPredicate("A.c2", "B.c2"),
            JoinPredicate("A.c1", "B.c1"),
        ])
        assert not sharding_eligible(plan)

    def test_anyk_plan_is_not_eligible(self, model):
        assert not sharding_eligible(anyk_plan(model))

    def test_access_plan_is_not_eligible(self, model):
        assert not sharding_eligible(ordered_access(model, "A"))


class TestAlternativeGating:
    def test_anyk_root_is_skipped_before_catalog_access(self, model):
        # catalog=None: an ineligible root must be rejected by the
        # eligibility gate alone, never by poking catalog state.
        assert parallel_alternative(None, model, anyk_plan(model)) \
            is None

    def test_nrjn_root_is_skipped(self, model):
        plan = rank_join(model, operator="nrjn")
        assert parallel_alternative(None, model, plan) is None

    def test_forced_modes_pass_anyk_through_unchanged(self, model):
        plan = anyk_plan(model)
        for mode in ("inline", "pool", "off"):
            result, changed = apply_parallel_mode(None, model, plan,
                                                  mode)
            assert result is plan
            assert changed == 0


class TestEligibleAlternative:
    """Positive control: the gate still admits what it should."""

    def make_db(self):
        rng = make_rng(9)
        db = Database(config=OptimizerConfig(enable_nrjn=False,
                                             parallel="off"))
        db.create_table("A", [("c1", "float"), ("c2", "int")], rows=[
            [float(rng.uniform(0, 1)), int(rng.integers(0, 10))]
            for _ in range(120)
        ])
        db.create_table("B", [("c1", "int"), ("c2", "float")], rows=[
            [int(rng.integers(0, 10)), float(rng.uniform(0, 1))]
            for _ in range(120)
        ])
        db.analyze()
        db.partition_table("A", 2, column="A.c2")
        db.partition_table("B", 2, column="B.c1")
        return db

    def query(self):
        return RankQuery(
            tables="AB",
            predicates=[JoinPredicate("A.c2", "B.c1")],
            ranking=ScoreExpression({"A.c1": 0.5, "B.c2": 0.5}),
            k=5,
        )

    def test_eligible_hrjn_gets_score_merge(self):
        db = self.make_db()
        plan = db.explain(self.query()).best_plan
        assert isinstance(plan, RankJoinPlan)
        assert sharding_eligible(plan)
        alternative = parallel_alternative(db.catalog, db.cost_model,
                                           plan)
        assert isinstance(alternative, ScoreMergePlan)
