"""Batch-at-a-time drain: exact equivalence with row-at-a-time.

``next_batch(n)`` must produce, over any sequence of calls, the exact
row sequence ``next()`` would -- for every operator, at every batch
size, even when calls are interleaved or a checkpoint lands mid-batch.
The plan shapes come from the checkpoint suite so every stateful
operator (scans, sort, limit, top-k, the four classic joins, and the
five rank-join variants) is covered.
"""

import pytest

from repro.common.errors import ExecutionError
from repro.common.rng import make_rng
from repro.executor.database import Database

from tests.test_checkpoint_roundtrip import FACTORIES, drain, full_run

BATCH_SIZES = (1, 2, 3, 7, 64)


def drain_batched(operator, batch_size):
    """Drain via ``next_batch`` only; operator stays open."""
    rows = []
    while True:
        batch = operator.next_batch(batch_size)
        rows.extend(batch)
        if len(batch) < batch_size:
            return rows


@pytest.mark.parametrize("kind", sorted(FACTORIES))
@pytest.mark.parametrize("batch_size", BATCH_SIZES)
def test_batched_drain_matches_row_at_a_time(kind, batch_size):
    factory = FACTORIES[kind]
    expected = full_run(factory)
    operator = factory()
    operator.open()
    try:
        assert drain_batched(operator, batch_size) == expected
        assert operator.next_batch(batch_size) == []
        assert operator.stats.rows_out == len(expected)
    finally:
        operator.close()


@pytest.mark.parametrize("kind", sorted(FACTORIES))
def test_interleaved_next_and_next_batch(kind):
    factory = FACTORIES[kind]
    expected = full_run(factory)
    operator = factory()
    operator.open()
    try:
        rows = drain(operator, 2)
        rows.extend(operator.next_batch(3))
        rows.extend(drain(operator, 1))
        while True:
            batch = operator.next_batch(4)
            rows.extend(batch)
            if len(batch) < 4:
                break
        assert rows == expected
    finally:
        operator.close()


@pytest.mark.parametrize("kind", sorted(FACTORIES))
def test_checkpoint_mid_batch_roundtrip(kind):
    """A snapshot taken between batches restores exactly."""
    factory = FACTORIES[kind]
    expected = full_run(factory)
    batch_size = 3
    for consumed in range(0, len(expected) + 1, batch_size):
        original = factory()
        original.open()
        try:
            prefix = []
            while len(prefix) < consumed:
                prefix.extend(original.next_batch(batch_size))
            assert prefix == expected[:consumed]
            state = original.state_dict()
        finally:
            original.close()
        restored = factory()
        restored.load_state_dict(state)
        try:
            assert drain_batched(restored, batch_size) == expected[consumed:]
        finally:
            restored.close()


def test_batch_after_row_checkpoint_restores_to_batches():
    """Row-wise snapshot, batch-wise resume (and vice versa)."""
    factory = FACTORIES["hrjn"]
    expected = full_run(factory)
    original = factory()
    original.open()
    try:
        drain(original, 4)
        state = original.state_dict()
    finally:
        original.close()
    restored = factory()
    restored.load_state_dict(state)
    try:
        assert drain_batched(restored, 5) == expected[4:]
    finally:
        restored.close()


def test_next_batch_requires_open():
    operator = FACTORIES["table_scan"]()
    with pytest.raises(ExecutionError):
        operator.next_batch(4)


def test_next_batch_nonpositive_is_empty():
    operator = FACTORIES["table_scan"]()
    operator.open()
    try:
        assert operator.next_batch(0) == []
        assert operator.next_batch(-3) == []
        assert operator.next_batch(4) != []
    finally:
        operator.close()


def build_db(rows=120, seed=11):
    rng = make_rng(seed)
    db = Database()
    for name in ("A", "B", "C"):
        db.create_table(name, [("c1", "float"), ("c2", "int")], rows=[
            [float(rng.uniform(0, 1)), int(rng.integers(0, 8))]
            for _ in range(rows)
        ])
    db.analyze()
    return db


END_TO_END_SQL = """
WITH Ranked AS (
  SELECT A.c1 AS x, B.c1 AS y, C.c1 AS z,
         rank() OVER (ORDER BY (0.3*A.c1 + 0.3*B.c1 + 0.3*C.c1)) AS rank
  FROM A, B, C
  WHERE A.c2 = B.c2 AND B.c2 = C.c2)
SELECT x, y, z, rank FROM Ranked WHERE rank <= 10
"""

SORT_SQL = "SELECT A.c1 FROM A ORDER BY A.c1 DESC LIMIT 100"


class TestEndToEndBatching:
    @pytest.mark.parametrize("sql", [END_TO_END_SQL, SORT_SQL])
    @pytest.mark.parametrize("batch_size", [1, 64, 512])
    def test_execute_batched_matches_row_at_a_time(self, sql, batch_size):
        db = build_db()
        expected = [dict(r) for r in db.execute(sql).rows]
        batched = db.execute(sql, batch_size=batch_size)
        assert [dict(r) for r in batched.rows] == expected

    def test_traced_batched_run_matches_and_annotates(self):
        db = build_db()
        expected = [dict(r) for r in db.execute(END_TO_END_SQL).rows]
        report = db.execute(END_TO_END_SQL, trace=True, batch_size=64)
        assert [dict(r) for r in report.rows] == expected
        assert report.telemetry.tracer.find("next").attributes == {
            "batch_size": 64,
        }

    def test_untraced_next_span_has_no_batch_attribute(self):
        db = build_db()
        report = db.execute(END_TO_END_SQL, trace=True)
        assert report.telemetry.tracer.find("next").attributes == {}

    def test_batch_metrics_are_recorded(self):
        db = build_db()
        db.execute(SORT_SQL, batch_size=64)
        metrics = {m["name"]: m["value"] for m in db.metrics.as_dicts()}
        assert metrics["executor_batch_rows_total"] == 100
        # 100 rows at batch 64: one full batch plus the short tail.
        assert metrics["executor_batches_total"] == 2

    def test_row_at_a_time_records_no_batch_metrics(self):
        db = build_db()
        db.execute(SORT_SQL)
        names = {m["name"] for m in db.metrics.as_dicts()}
        assert "executor_batches_total" not in names

    def test_prepared_execute_accepts_batch_size(self):
        db = build_db()
        prepared = db.prepare(SORT_SQL)
        expected = [dict(r) for r in prepared.execute().rows]
        batched = prepared.execute(batch_size=32)
        assert [dict(r) for r in batched.rows] == expected
