"""Tests for executing pinned plans (Executor.run_plan) -- the path
experiments use to run alternatives the optimizer pruned."""

import pytest

from repro.cost.model import CostModel
from repro.data.catalogs import make_abc_catalog
from repro.executor.executor import Executor
from repro.optimizer.enumerator import OptimizerConfig
from repro.optimizer.expressions import ScoreExpression
from repro.optimizer.plans import RankJoinPlan, SortPlan
from repro.optimizer.query import JoinPredicate, RankQuery


@pytest.fixture(scope="module")
def setup():
    catalog = make_abc_catalog(rows=120)
    executor = Executor(catalog, CostModel(), OptimizerConfig())
    query = RankQuery(
        tables="AB",
        predicates=[JoinPredicate("A.c2", "B.c2")],
        ranking=ScoreExpression({"A.c1": 0.5, "B.c1": 0.5}),
        k=6,
    )
    return catalog, executor, query


class TestRunPlan:
    def test_every_retained_root_plan_gives_same_topk(self, setup):
        catalog, executor, query = setup
        memo = executor.optimizer.build_memo(query)
        ranking = query.ranking
        reference = None
        ran = 0
        for plan in memo.entry(query.tables):
            if not plan.order.covers(
                    executor.optimizer._required_order(query)):
                continue
            report = executor.run_plan(query, plan, k=query.k)
            scores = [round(ranking.evaluate(r), 9) for r in report.rows]
            if reference is None:
                reference = scores
            else:
                assert scores == reference
            ran += 1
        assert ran >= 1

    def test_run_plan_without_limit_drains(self, setup):
        catalog, executor, query = setup
        memo = executor.optimizer.build_memo(query)
        plan = memo.best(query.tables)
        report = executor.run_plan(query, plan)
        # Full join result: compare against the plan's estimate order
        # of magnitude (cardinality estimates are statistical).
        assert len(report.rows) > 0

    def test_pruned_alternative_runs(self, setup):
        """A sort plan built by hand (even if pruned) still executes."""
        catalog, executor, query = setup
        memo = executor.optimizer.build_memo(query)
        base = memo.best(query.tables)
        required = executor.optimizer._required_order(query)
        if base.order.covers(required):
            sort_plan = base
        else:
            sort_plan = SortPlan(CostModel(), base, required)
        report = executor.run_plan(query, sort_plan, k=3)
        assert len(report.rows) == 3

    def test_operator_snapshots_from_pinned_plan(self, setup):
        catalog, executor, query = setup
        memo = executor.optimizer.build_memo(query)
        rank_plans = [p for p in memo.entry(query.tables)
                      if isinstance(p, RankJoinPlan)]
        if not rank_plans:
            pytest.skip("no rank-join plan retained at the root")
        report = executor.run_plan(query, rank_plans[0], k=4)
        assert report.rank_join_snapshots()
