"""Integration tests on 4-table queries (deeper enumeration, bushy
splits, longer rank-join pipelines)."""


import pytest

from repro.common.rng import make_rng
from repro.cost.model import CostModel
from repro.executor.database import Database
from repro.optimizer.enumerator import Optimizer, OptimizerConfig
from repro.optimizer.expressions import ScoreExpression
from repro.optimizer.query import JoinPredicate, RankQuery


def build_db(rows=40, domain=6, seed=21, config=None):
    rng = make_rng(seed)
    db = Database(config=config)
    for name in ("A", "B", "C", "D"):
        db.create_table(
            name, [("c1", "float"), ("c2", "int")],
            rows=[[float(rng.uniform(0, 1)), int(rng.integers(0, domain))]
                  for _ in range(rows)],
        )
    db.analyze()
    return db


def chain_query(k=10):
    """A - B - C - D chain joined on c2, ranked on all four c1."""
    return RankQuery(
        tables="ABCD",
        predicates=[JoinPredicate("A.c2", "B.c2"),
                    JoinPredicate("B.c2", "C.c2"),
                    JoinPredicate("C.c2", "D.c2")],
        ranking=ScoreExpression({"A.c1": 0.25, "B.c1": 0.25,
                                 "C.c1": 0.25, "D.c1": 0.25}),
        k=k,
    )


def star_query(k=10):
    """B is the hub: A-B, B-C, B-D."""
    return RankQuery(
        tables="ABCD",
        predicates=[JoinPredicate("A.c2", "B.c2"),
                    JoinPredicate("B.c2", "C.c2"),
                    JoinPredicate("B.c2", "D.c2")],
        ranking=ScoreExpression({"A.c1": 0.25, "B.c1": 0.25,
                                 "C.c1": 0.25, "D.c1": 0.25}),
        k=k,
    )


def brute_force(db, query):
    """Reference evaluation: incremental joins, then sort and cut."""
    tables = sorted(query.tables)
    partial = [{}]
    included = set()
    for table in tables:
        rows = [dict(r.items()) for r in db.catalog.table(table).scan()]
        predicates = [
            p for p in query.predicates
            if table in p.tables and p.tables <= included | {table}
        ]
        extended = []
        for merged in partial:
            for row in rows:
                candidate = {**merged, **row}
                if all(candidate[p.left_column] == candidate[p.right_column]
                       for p in predicates):
                    extended.append(candidate)
        partial = extended
        included.add(table)
    scores = sorted(
        (sum(w * merged[c] for c, w in query.ranking.weights.items())
         for merged in partial),
        reverse=True,
    )
    return [round(v, 9) for v in scores[:query.k]]


@pytest.mark.parametrize("make_query", [chain_query, star_query],
                         ids=["chain", "star"])
class TestFourWay:
    def test_results_match_brute_force(self, make_query):
        db = build_db()
        query = make_query()
        report = db.execute(query)
        got = [round(query.ranking.evaluate(r), 9) for r in report.rows]
        assert got == brute_force(db, query)

    def test_memo_covers_all_connected_subsets(self, make_query):
        db = build_db()
        query = make_query()
        memo = db.optimizer().build_memo(query)
        for size in (1, 4):
            entries = [t for t in memo.entries() if len(t) == size]
            assert entries
        # Every retained entry is a connected subgraph.
        for tables in memo.entries():
            assert query.is_connected(tables)

    def test_chosen_plan_is_ranked(self, make_query):
        db = build_db()
        result = db.explain(make_query())
        assert result.best_plan.order.covers(result.required_order)


class TestEnumerationShapes:
    def test_chain_has_no_ac_entry(self):
        db = build_db()
        memo = db.optimizer().build_memo(chain_query())
        assert frozenset("AC") not in memo
        assert frozenset("AD") not in memo
        assert frozenset("ACD") not in memo

    def test_star_bushy_split_possible(self):
        """In the star query {A,B} and {C... } around the hub allow a
        bushy join ({A,B} x {B,C} is not disjoint; but {A,B} x {C} and
        {A,B,C} x {D} are); verify deep entries exist and plans join
        multi-table sides."""
        db = build_db()
        memo = db.optimizer().build_memo(star_query())
        abc = memo.entry(frozenset("ABC"))
        assert abc
        # At least one plan joins a 2-table side with a 1-table side.
        shapes = set()
        for plan in memo.entry(frozenset("ABCD")):
            if plan.children and len(plan.children) == 2:
                shapes.add(tuple(sorted(
                    len(child.tables) for child in plan.children
                )))
        assert shapes  # Join plans exist at the root.

    def test_traditional_agrees_on_answers(self):
        db_rank = build_db()
        db_trad = build_db(config=OptimizerConfig(rank_aware=False))
        query = chain_query()
        rows_rank = db_rank.execute(query).rows
        rows_trad = db_trad.execute(query).rows
        score = lambda r: round(query.ranking.evaluate(r), 9)
        assert ([score(r) for r in rows_rank]
                == [score(r) for r in rows_trad])

    def test_memo_larger_with_rank_awareness(self):
        db = build_db()
        query = chain_query()
        rank_memo = db.optimizer().build_memo(query)
        traditional = Optimizer(
            db.catalog, CostModel(), OptimizerConfig(rank_aware=False),
        ).build_memo(query)
        assert rank_memo.class_count() > traditional.class_count()
