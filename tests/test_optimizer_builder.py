"""Unit tests for plan -> operator translation."""

import pytest

from repro.cost.model import CostModel
from repro.operators.hrjn import HRJN
from repro.operators.nrjn import NRJN
from repro.operators.scan import IndexScan, TableScan
from repro.operators.sort import Sort
from repro.optimizer.builder import PlanBuilder
from repro.optimizer.enumerator import Optimizer, OptimizerConfig
from repro.optimizer.expressions import ScoreExpression
from repro.optimizer.plans import AccessPlan, SortPlan
from repro.optimizer.properties import OrderProperty
from repro.optimizer.query import JoinPredicate, RankQuery

from repro.data.catalogs import make_abc_catalog


@pytest.fixture(scope="module")
def catalog():
    return make_abc_catalog(rows=150)


def q2_query(k=5):
    """Q2-style ranking query, with joins on the integer-domain c2
    columns so execution over generated data yields matches."""
    return RankQuery(
        tables="ABC",
        predicates=[JoinPredicate("A.c2", "B.c2"),
                    JoinPredicate("B.c2", "C.c2")],
        ranking=ScoreExpression({"A.c1": 0.3, "B.c1": 0.3, "C.c1": 0.3}),
        k=k,
    )


class TestAccessPaths:
    def test_table_scan(self, catalog):
        plan = AccessPlan(CostModel(), "A", 150)
        operator = PlanBuilder(catalog).build(plan)
        assert isinstance(operator, TableScan)

    def test_index_scan(self, catalog):
        plan = AccessPlan(
            CostModel(), "A", 150, order=OrderProperty.on("A.c1"),
            index_name="A_c1_idx",
        )
        operator = PlanBuilder(catalog).build(plan)
        assert isinstance(operator, IndexScan)
        assert operator.index.name == "A_c1_idx"

    def test_sort_plan(self, catalog):
        base = AccessPlan(CostModel(), "A", 150)
        plan = SortPlan(CostModel(), base, OrderProperty.on("A.c1"))
        operator = PlanBuilder(catalog).build(plan)
        assert isinstance(operator, Sort)
        scores = [r["A.c1"] for r in operator]
        assert scores == sorted(scores, reverse=True)


class TestFullQuery:
    def test_build_query_executes(self, catalog):
        optimizer = Optimizer(catalog, CostModel(), OptimizerConfig())
        result = optimizer.optimize(q2_query(k=4))
        root = PlanBuilder(catalog).build_query(result)
        rows = list(root)
        assert len(rows) == 4

    def test_rank_join_operators_materialise(self, catalog):
        optimizer = Optimizer(catalog, CostModel(), OptimizerConfig())
        result = optimizer.optimize(q2_query())
        root = PlanBuilder(catalog).build_query(result)
        kinds = {type(op) for op in root.walk()}
        assert kinds & {HRJN, NRJN}

    def test_unique_score_columns_in_pipeline(self, catalog):
        """Chained rank-joins must not collide on score column names."""
        optimizer = Optimizer(catalog, CostModel(), OptimizerConfig())
        result = optimizer.optimize(q2_query())
        builder = PlanBuilder(catalog)
        root = builder.build_query(result)
        score_columns = [
            op.output_score_column for op in root.walk()
            if isinstance(op, (HRJN, NRJN))
        ]
        assert len(score_columns) == len(set(score_columns))

    def test_select_projection_applied(self, catalog):
        query = RankQuery(
            tables="AB",
            predicates=[JoinPredicate("A.c2", "B.c2")],
            ranking=ScoreExpression({"A.c1": 0.5, "B.c1": 0.5}),
            k=3, select=("A.c1",),
        )
        optimizer = Optimizer(catalog, CostModel(), OptimizerConfig())
        result = optimizer.optimize(query)
        root = PlanBuilder(catalog).build_query(result)
        rows = list(root)
        assert rows and all(set(r.keys()) == {"A.c1"} for r in rows)
