"""Unit tests for the observability package: tracer, metrics, events."""

import pytest

from repro.common.errors import ExecutionError
from repro.observability import NULL_TRACER, Telemetry, Tracer
from repro.observability.events import EventLog
from repro.observability.metrics import MetricsRegistry


class TestTracer:
    def test_spans_nest_by_stack(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner", detail=1):
                pass
            with tracer.span("sibling"):
                pass
        assert len(tracer.spans) == 1
        outer = tracer.spans[0]
        assert [child.name for child in outer.children] == [
            "inner", "sibling",
        ]
        assert outer.children[0].attributes == {"detail": 1}

    def test_durations_are_positive_and_ordered(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                sum(range(1000))
        outer = tracer.spans[0]
        inner = outer.children[0]
        assert outer.finished and inner.finished
        assert inner.duration_ns > 0
        assert outer.duration_ns >= inner.duration_ns

    def test_begin_end_out_of_order_unwinds(self):
        tracer = Tracer()
        outer = tracer.begin("outer")
        tracer.begin("inner")
        tracer.end(outer)  # Ends inner too.
        assert tracer.current() is None
        assert all(span.finished for span in outer.walk())

    def test_find_and_walk(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        assert tracer.find("b").name == "b"
        assert tracer.find("missing") is None
        assert [s.name for s in tracer.spans[0].walk()] == ["a", "b"]

    def test_describe_and_as_dicts(self):
        tracer = Tracer()
        with tracer.span("phase", operator="X"):
            pass
        text = tracer.describe()
        assert "phase" in text and "operator=X" in text
        (root,) = tracer.as_dicts()
        assert root["name"] == "phase"
        assert root["attributes"] == {"operator": "X"}
        assert root["duration_ns"] >= 0

    def test_null_tracer_is_inert(self):
        with NULL_TRACER.span("anything", x=1) as span:
            assert span is None
        assert NULL_TRACER.begin("x") is None
        assert NULL_TRACER.find("x") is None
        assert NULL_TRACER.as_dicts() == []
        assert NULL_TRACER.describe() == ""
        assert not NULL_TRACER.enabled


class TestMetrics:
    def test_counter_labels_accumulate(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits", "help text")
        counter.inc(op="scan")
        counter.inc(2, op="scan")
        counter.inc(op="join")
        assert counter.value(op="scan") == 3
        assert counter.value(op="join") == 1
        assert counter.value(op="other") == 0
        assert counter.total() == 4

    def test_counter_rejects_decrease(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ExecutionError):
            counter.inc(-1)

    def test_gauge_set_and_inc(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(5, op="x")
        gauge.set(3, op="x")
        gauge.inc(2, op="x")
        assert gauge.value(op="x") == 5

    def test_histogram_buckets_cumulative(self):
        histogram = MetricsRegistry().histogram(
            "h", buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 5, 50, 500):
            histogram.observe(value)
        count, total = histogram.value()
        assert count == 4
        assert total == pytest.approx(555.5)
        ((_labels, state),) = histogram.samples()
        assert state["buckets"] == [1, 2, 3, 4]  # cumulative + Inf

    def test_get_or_create_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("n") is registry.counter("n")
        with pytest.raises(ExecutionError):
            registry.gauge("n")

    def test_as_dicts_and_describe(self):
        registry = MetricsRegistry()
        registry.counter("n").inc(3, op="x")
        (entry,) = registry.as_dicts()
        assert entry == {"name": "n", "kind": "counter",
                         "labels": {"op": "x"}, "value": 3}
        assert "n{op=x} = 3" in registry.describe()


class TestEventLog:
    def test_emit_order_and_filter(self):
        log = EventLog()
        log.emit("memo_insert", plan="P1")
        log.emit("plan_pruned", plan="P2")
        log.emit("memo_insert", plan="P3")
        assert len(log) == 3
        assert [event.sequence for event in log.events()] == [0, 1, 2]
        assert [event.attributes["plan"]
                for event in log.events("memo_insert")] == ["P1", "P3"]
        assert log.count("plan_pruned") == 1
        assert log.kinds() == {"memo_insert": 2, "plan_pruned": 1}

    def test_as_dicts_round_trip(self):
        log = EventLog()
        log.emit("recovery", action="fallback", rows=7)
        (entry,) = log.as_dicts()
        assert entry["kind"] == "recovery"
        assert entry["attributes"] == {"action": "fallback", "rows": 7}


class TestTelemetry:
    def test_disabled_uses_null_tracer(self):
        telemetry = Telemetry(enabled=False)
        assert telemetry.tracer is NULL_TRACER
        assert telemetry.describe() == ""

    def test_instrument_and_release(self, small_table):
        from repro.operators.scan import TableScan
        from repro.operators.topk import Limit

        root = Limit(TableScan(small_table), 3)
        telemetry = Telemetry()
        telemetry.instrument(root)
        assert all(op._tracer is telemetry.tracer for op in root.walk())
        rows = list(root)
        assert len(rows) == 3
        assert root.stats.time_open_ns > 0
        assert root.stats.time_next_ns > 0
        assert root.stats.next_calls == 4  # 3 rows + exhaustion
        assert root.stats.pull_ns[0] > 0
        # Per-operator open/close spans were recorded.
        assert telemetry.tracer.find("open") is not None
        assert telemetry.tracer.find("close") is not None
        telemetry.release(root)
        assert all(op._tracer is None for op in root.walk())

    def test_disabled_instrument_is_noop(self, small_table):
        from repro.operators.scan import TableScan

        scan = TableScan(small_table)
        Telemetry(enabled=False).instrument(scan)
        assert scan._tracer is None
        list(scan)
        assert scan.stats.total_time_ns == 0
        assert "timing" not in scan.stats.as_dict()

    def test_record_operators_populates_metrics(self, small_table):
        from repro.executor.executor import OperatorSnapshot
        from repro.operators.scan import TableScan
        from repro.operators.topk import Limit

        root = Limit(TableScan(small_table), 2)
        telemetry = Telemetry()
        telemetry.instrument(root)
        list(root)
        snapshots = [OperatorSnapshot(op) for op in root.walk()]
        telemetry.record_operators(snapshots)
        rows_out = telemetry.metrics.counter("operator_rows_out")
        assert rows_out.value(operator="Limit(k=2)") == 2
        pulls = telemetry.metrics.counter("operator_pulls")
        assert pulls.value(operator="Limit(k=2)", input=0) == 2
        time_ns = telemetry.metrics.gauge("operator_time_ns")
        assert time_ns.value(operator="Limit(k=2)", phase="next") > 0
