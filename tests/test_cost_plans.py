"""Unit tests for plan-level costing (sort plan vs rank-join plan)."""

import pytest

from repro.common.errors import EstimationError
from repro.cost.model import CostModel
from repro.cost.plans import (
    estimate_depths,
    rank_join_plan_cost,
    sort_plan_cost,
)


@pytest.fixture
def model():
    return CostModel()


class TestSortPlan:
    def test_best_is_minimum(self, model):
        n, s = 10000, 0.001
        best = sort_plan_cost(model, n, n, s, join_method="best")
        for method in ("inl", "hash", "sort_merge"):
            assert best <= sort_plan_cost(model, n, n, s,
                                          join_method=method) + 1e-9

    def test_cost_grows_with_selectivity(self, model):
        """More join results to sort -> higher cost."""
        n = 10000
        low = sort_plan_cost(model, n, n, 1e-4)
        high = sort_plan_cost(model, n, n, 1e-1)
        assert high > low

    def test_unknown_method_rejected(self, model):
        with pytest.raises(EstimationError):
            sort_plan_cost(model, 10, 10, 0.1, join_method="zigzag")


class TestRankJoinPlan:
    def test_cost_monotone_in_k(self, model):
        n, s = 10000, 0.001
        costs = [rank_join_plan_cost(model, k, s, n, n)
                 for k in (1, 10, 100, 1000)]
        assert costs == sorted(costs)

    def test_cost_decreases_with_selectivity(self, model):
        """Higher selectivity -> shallower depths -> cheaper."""
        n, k = 10000, 100
        assert (rank_join_plan_cost(model, k, 1e-1, n, n)
                < rank_join_plan_cost(model, k, 1e-4, n, n))

    def test_depths_clamped_at_cardinality(self, model):
        estimate = estimate_depths(10 ** 9, 1e-6, 100, 100)
        assert estimate.d_left <= 100
        assert estimate.d_right <= 100

    def test_worst_mode_costs_more(self, model):
        n, s, k = 10000, 0.001, 100
        assert (rank_join_plan_cost(model, k, s, n, n, mode="worst")
                >= rank_join_plan_cost(model, k, s, n, n, mode="average"))

    def test_nrjn_charges_inner(self, model):
        n, s, k = 10000, 0.001, 10
        hrjn = rank_join_plan_cost(model, k, s, n, n, operator="hrjn")
        nrjn = rank_join_plan_cost(model, k, s, n, n, operator="nrjn")
        # NRJN scans the whole inner; for small k HRJN is cheaper under
        # a clustered-free cost model only if random I/O is moderate.
        assert nrjn >= model.table_scan_cost(n)
        assert hrjn > 0

    def test_slabs_override(self, model):
        cost = rank_join_plan_cost(
            model, 10, 0.01, 1000, 1000, slabs=(1.0, 1.0),
        )
        assert cost > 0

    def test_invalid_inputs(self, model):
        with pytest.raises(EstimationError):
            rank_join_plan_cost(model, 0, 0.1, 10, 10)
        with pytest.raises(EstimationError):
            rank_join_plan_cost(model, 1, 0.1, 10, 10, operator="zzz")
        with pytest.raises(EstimationError):
            rank_join_plan_cost(model, 1, 0.1, 10, 10, mode="bogus")


class TestFigureShapes:
    """The qualitative shapes of Figures 1 and 6."""

    def test_figure1_crossover_in_selectivity(self, model):
        """Sort plan wins at low selectivity, rank-join at high."""
        n, k = 10000, 100
        low_s, high_s = 1e-5, 1e-2
        assert (sort_plan_cost(model, n, n, low_s)
                < rank_join_plan_cost(model, k, low_s, n, n))
        assert (sort_plan_cost(model, n, n, high_s)
                > rank_join_plan_cost(model, k, high_s, n, n))

    def test_figure6_sort_flat_rank_grows(self, model):
        """Sort-plan cost is k-independent; rank-join cost grows."""
        n, s = 10000, 1e-3
        sort_cost = sort_plan_cost(model, n, n, s)
        rank_small = rank_join_plan_cost(model, 1, s, n, n)
        rank_large = rank_join_plan_cost(model, 5000, s, n, n)
        assert rank_small < sort_cost < rank_large
