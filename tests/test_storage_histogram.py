"""Unit tests for equi-width histograms."""

import pytest

from repro.common.errors import CatalogError
from repro.common.rng import make_rng
from repro.storage.histogram import EquiWidthHistogram


class TestConstruction:
    def test_counts_sum_to_total(self):
        histogram = EquiWidthHistogram(range(1000), buckets=16)
        assert sum(histogram.counts) == 1000
        assert histogram.total == 1000

    def test_empty(self):
        histogram = EquiWidthHistogram([])
        assert histogram.total == 0
        with pytest.raises(CatalogError):
            histogram.selectivity_le(1.0)

    def test_single_value_column(self):
        histogram = EquiWidthHistogram([5.0] * 10)
        assert histogram.selectivity_eq(5.0) == 1.0
        assert histogram.selectivity_eq(6.0) == 0.0
        assert histogram.selectivity_le(5.0) == 1.0

    def test_nones_dropped(self):
        histogram = EquiWidthHistogram([1.0, None, 2.0])
        assert histogram.total == 2


class TestRangeSelectivity:
    def test_boundaries(self):
        histogram = EquiWidthHistogram(range(100), buckets=10)
        assert histogram.selectivity_le(-1) == 0.0
        assert histogram.selectivity_le(99) == 1.0
        assert histogram.selectivity_ge(0) == pytest.approx(1.0, abs=0.05)

    def test_uniform_data_midpoint(self):
        histogram = EquiWidthHistogram(range(1000), buckets=32)
        assert histogram.selectivity_le(499.5) == pytest.approx(0.5,
                                                                abs=0.02)

    def test_skewed_data(self):
        """Histogram beats the uniform assumption on skewed data."""
        rng = make_rng(4)
        values = list(rng.exponential(1.0, 10000))
        histogram = EquiWidthHistogram(values, buckets=64)
        true_fraction = sum(1 for v in values if v <= 1.0) / len(values)
        estimated = histogram.selectivity_le(1.0)
        assert estimated == pytest.approx(true_fraction, abs=0.05)
        # The uniform min/max assumption would be far off.
        uniform = (1.0 - min(values)) / (max(values) - min(values))
        assert abs(uniform - true_fraction) > abs(
            estimated - true_fraction
        )

    def test_le_monotone(self):
        histogram = EquiWidthHistogram(range(100), buckets=8)
        fractions = [histogram.selectivity_le(v) for v in range(0, 100, 7)]
        assert fractions == sorted(fractions)

    def test_dispatch(self):
        histogram = EquiWidthHistogram(range(100), buckets=8)
        assert histogram.selectivity("<=", 50) == (
            histogram.selectivity_le(50)
        )
        assert histogram.selectivity(">=", 50) == (
            histogram.selectivity_ge(50)
        )
        with pytest.raises(CatalogError):
            histogram.selectivity("!=", 1)


class TestEquality:
    def test_out_of_range(self):
        histogram = EquiWidthHistogram(range(100))
        assert histogram.selectivity_eq(500) == 0.0

    def test_in_range_positive(self):
        histogram = EquiWidthHistogram(range(100))
        assert 0.0 < histogram.selectivity_eq(50) < 0.5
