"""Unit tests for the DP enumerator, including Figures 2 and 3."""

import pytest

from repro.cost.model import CostModel
from repro.optimizer.enumerator import Optimizer, OptimizerConfig
from repro.optimizer.expressions import ScoreExpression
from repro.optimizer.plans import RankJoinPlan, SortPlan
from repro.optimizer.query import JoinPredicate, RankQuery

from repro.data.catalogs import make_abc_catalog


@pytest.fixture(scope="module")
def catalog():
    return make_abc_catalog()


def fig2_query(order_by=None):
    return RankQuery(
        tables="ABC",
        predicates=[JoinPredicate("A.c1", "B.c1"),
                    JoinPredicate("B.c2", "C.c2")],
        order_by=order_by,
    )


def q2_query(k=5):
    return RankQuery(
        tables="ABC",
        predicates=[JoinPredicate("A.c2", "B.c1"),
                    JoinPredicate("B.c2", "C.c2")],
        ranking=ScoreExpression({"A.c1": 0.3, "B.c1": 0.3, "C.c1": 0.3}),
        k=k,
    )


class TestFigureTwo:
    """Traditional optimizer plan counts (Figure 2)."""

    def test_no_order_by_12_plans(self, catalog):
        optimizer = Optimizer(catalog, CostModel(),
                              OptimizerConfig(rank_aware=False))
        memo = optimizer.build_memo(fig2_query())
        assert memo.class_count() == 12

    def test_with_order_by_15_plans(self, catalog):
        optimizer = Optimizer(catalog, CostModel(),
                              OptimizerConfig(rank_aware=False))
        memo = optimizer.build_memo(fig2_query(order_by="A.c2"))
        assert memo.class_count() == 15

    def test_per_entry_counts(self, catalog):
        optimizer = Optimizer(catalog, CostModel(),
                              OptimizerConfig(rank_aware=False))
        memo = optimizer.build_memo(fig2_query())
        counts = {"".join(sorted(t)): memo.class_count(t)
                  for t in memo.entries()}
        assert counts == {"A": 2, "B": 3, "C": 2,
                          "AB": 2, "BC": 2, "ABC": 1}

    def test_disconnected_entry_absent(self, catalog):
        """No (A,C) MEMO entry: the query has 4 joins, not 6."""
        optimizer = Optimizer(catalog, CostModel(),
                              OptimizerConfig(rank_aware=False))
        memo = optimizer.build_memo(fig2_query())
        assert frozenset({"A", "C"}) not in memo


class TestFigureThree:
    """Rank-aware plan counts (Figure 3)."""

    def test_traditional_12_plans(self, catalog):
        optimizer = Optimizer(catalog, CostModel(),
                              OptimizerConfig(rank_aware=False))
        assert optimizer.build_memo(q2_query()).class_count() == 12

    def test_rank_aware_17_plans(self, catalog):
        optimizer = Optimizer(catalog, CostModel(), OptimizerConfig())
        assert optimizer.build_memo(q2_query()).class_count() == 17

    def test_rank_aware_per_entry(self, catalog):
        optimizer = Optimizer(catalog, CostModel(), OptimizerConfig())
        memo = optimizer.build_memo(q2_query())
        counts = {"".join(sorted(t)): memo.class_count(t)
                  for t in memo.entries()}
        assert counts == {"A": 3, "B": 3, "C": 3,
                          "AB": 3, "BC": 3, "ABC": 2}

    def test_interesting_expression_retained_at_ab(self, catalog):
        optimizer = Optimizer(catalog, CostModel(), OptimizerConfig())
        memo = optimizer.build_memo(q2_query())
        orders = {p.order.describe() for p in memo.entry({"A", "B"})}
        assert "0.3*A.c1 + 0.3*B.c1" in orders


class TestPlanChoice:
    def test_ranking_query_yields_ranked_plan(self, catalog):
        optimizer = Optimizer(catalog, CostModel(), OptimizerConfig())
        result = optimizer.optimize(q2_query())
        assert result.best_plan.order.covers(result.required_order)

    def test_rank_join_in_best_plan_for_selective_query(self, catalog):
        optimizer = Optimizer(catalog, CostModel(), OptimizerConfig())
        result = optimizer.optimize(q2_query(k=5))
        kinds = {type(p).__name__ for p in _walk(result.best_plan)}
        assert "RankJoinPlan" in kinds

    def test_traditional_config_yields_sort_plan(self, catalog):
        optimizer = Optimizer(catalog, CostModel(),
                              OptimizerConfig(rank_aware=False))
        result = optimizer.optimize(q2_query())
        assert isinstance(result.best_plan, SortPlan)

    def test_hrjn_only_config(self, catalog):
        optimizer = Optimizer(
            catalog, CostModel(),
            OptimizerConfig(enable_nrjn=False),
        )
        result = optimizer.optimize(q2_query())
        for plan in _walk(result.best_plan):
            if isinstance(plan, RankJoinPlan):
                assert plan.operator == "hrjn"

    def test_order_by_query(self, catalog):
        optimizer = Optimizer(catalog, CostModel(),
                              OptimizerConfig(rank_aware=False))
        result = optimizer.optimize(fig2_query(order_by="A.c2"))
        assert result.best_plan.order.describe() == "A.c2"

    def test_single_table_topk(self, catalog):
        query = RankQuery(
            tables="A", ranking=ScoreExpression.single("A.c1"), k=3,
        )
        optimizer = Optimizer(catalog, CostModel(), OptimizerConfig())
        result = optimizer.optimize(query)
        assert result.best_plan.order.describe() == "A.c1"

    def test_explain_mentions_k(self, catalog):
        optimizer = Optimizer(catalog, CostModel(), OptimizerConfig())
        assert "k=5" in optimizer.optimize(q2_query()).explain()


def _walk(plan):
    yield plan
    for child in plan.children:
        for descendant in _walk(child):
            yield descendant
