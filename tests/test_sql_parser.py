"""Unit tests for the SQL parser."""

import pytest

from repro.common.errors import ParseError
from repro.sql.parser import parse_query

Q1 = """
WITH RankedABC as (
SELECT A.c1 as x ,B.c2 as y, rank() OVER
(ORDER BY (0.3*A.c1+0.7*B.c2)) as rank
FROM A,B,C
WHERE A.c1 = B.c1 and B.c2 = C.c2)
SELECT x,y,rank
FROM RankedABC
WHERE rank <=5;
"""

Q2 = """
WITH RankedABC as (
SELECT A.c1 as x ,B.c1 as y, C.c1 as z, rank() OVER
(ORDER BY (0.3*A.c1+0.3*B.c1+0.3*C.c1)) as rank
FROM A,B,C
WHERE A.c2 = B.c1 and B.c2 = C.c2)
SELECT x,y,z,rank
FROM RankedABC
WHERE rank <=5;
"""


class TestPaperQueries:
    def test_q1_shape(self):
        query = parse_query(Q1)
        assert query.tables == frozenset("ABC")
        assert query.k == 5
        assert query.ranking.weights == {"A.c1": 0.3, "B.c2": 0.7}
        assert len(query.predicates) == 2
        assert query.select == ("A.c1", "B.c2")

    def test_q2_shape(self):
        query = parse_query(Q2)
        assert query.ranking.weights == {
            "A.c1": 0.3, "B.c1": 0.3, "C.c1": 0.3,
        }
        assert query.k == 5

    def test_unit_weights(self):
        query = parse_query(
            "WITH R AS (SELECT A.c1 AS x, rank() OVER "
            "(ORDER BY (A.c1 + B.c1)) AS r FROM A, B "
            "WHERE A.c2 = B.c2) SELECT x, r FROM R WHERE r <= 3",
        )
        assert query.ranking.weights == {"A.c1": 1.0, "B.c1": 1.0}


class TestPlainQueries:
    def test_select_join(self):
        query = parse_query(
            "SELECT A.c2 FROM A, B WHERE A.c1 = B.c1",
        )
        assert not query.is_ranking
        assert query.select == ("A.c2",)

    def test_order_by(self):
        query = parse_query(
            "SELECT A.c2 FROM A ORDER BY A.c2",
        )
        assert query.order_by == "A.c2"

    def test_select_star(self):
        query = parse_query("SELECT * FROM A")
        assert query.select is None

    def test_order_by_limit_becomes_topk(self):
        query = parse_query(
            "SELECT A.c1 FROM A ORDER BY A.c1 DESC LIMIT 7",
        )
        assert query.is_ranking
        assert query.k == 7
        assert query.ranking.columns() == ("A.c1",)

    def test_ascending_limit_rejected(self):
        with pytest.raises(ParseError, match="DESC"):
            parse_query("SELECT A.c1 FROM A ORDER BY A.c1 LIMIT 7")

    def test_explicit_asc_rejected(self):
        with pytest.raises(ParseError, match="ascending"):
            parse_query("SELECT A.c1 FROM A ORDER BY A.c1 ASC")


class TestErrors:
    def test_limit_without_order_by(self):
        with pytest.raises(ParseError):
            parse_query("SELECT A.c1 FROM A LIMIT 5")

    def test_missing_rank_item(self):
        with pytest.raises(ParseError, match="rank"):
            parse_query(
                "WITH R AS (SELECT A.c1 AS x FROM A) "
                "SELECT x FROM R WHERE x <= 5",
            )

    def test_outer_from_mismatch(self):
        with pytest.raises(ParseError, match="FROM must reference"):
            parse_query(
                "WITH R AS (SELECT A.c1 AS x, rank() OVER "
                "(ORDER BY A.c1) AS r FROM A) "
                "SELECT x FROM Other WHERE r <= 5",
            )

    def test_outer_where_mismatch(self):
        with pytest.raises(ParseError, match="WHERE must filter"):
            parse_query(
                "WITH R AS (SELECT A.c1 AS x, rank() OVER "
                "(ORDER BY A.c1) AS r FROM A) "
                "SELECT x FROM R WHERE x <= 5",
            )

    def test_non_integer_k(self):
        with pytest.raises(ParseError, match="positive integer"):
            parse_query(
                "WITH R AS (SELECT A.c1 AS x, rank() OVER "
                "(ORDER BY A.c1) AS r FROM A) "
                "SELECT x FROM R WHERE r <= 2.5",
            )

    def test_duplicate_score_column(self):
        with pytest.raises(ParseError, match="duplicate"):
            parse_query(
                "WITH R AS (SELECT A.c1 AS x, rank() OVER "
                "(ORDER BY (0.3*A.c1 + 0.7*A.c1)) AS r FROM A) "
                "SELECT x FROM R WHERE r <= 5",
            )

    def test_trailing_garbage(self):
        with pytest.raises(ParseError, match="trailing"):
            parse_query("SELECT A.c1 FROM A ) )")

    def test_bare_ident_after_table_is_alias(self):
        query = parse_query("SELECT a1.c1 FROM A a1")
        assert query.tables == frozenset({"a1"})
        assert query.aliases == {"a1": "A"}

    def test_unknown_output_column(self):
        with pytest.raises(ParseError, match="unknown output column"):
            parse_query(
                "WITH R AS (SELECT A.c1 AS x, rank() OVER "
                "(ORDER BY A.c1) AS r FROM A) "
                "SELECT zz, r FROM R WHERE r <= 5",
            )
