"""Integration tests: SQL -> optimizer -> executor vs brute force."""

import itertools

import pytest

from repro.common.rng import make_rng
from repro.executor.database import Database
from repro.optimizer.enumerator import OptimizerConfig


def build_db(tables=("A", "B", "C"), rows=120, domain=8, seed=11,
             config=None):
    rng = make_rng(seed)
    db = Database(config=config)
    for name in tables:
        db.create_table(
            name, [("c1", "float"), ("c2", "int")],
            rows=[[float(rng.uniform(0, 1)), int(rng.integers(0, domain))]
                  for _ in range(rows)],
        )
    db.analyze()
    return db


def brute_force_topk(db, tables, predicates, weights, k):
    """Reference evaluation: full cross product, filter, sort, cut."""
    scans = [list(db.catalog.table(t).scan()) for t in tables]
    scores = []
    for combo in itertools.product(*scans):
        merged = {}
        for row in combo:
            merged.update(row.items())
        if all(merged[a] == merged[b] for a, b in predicates):
            scores.append(sum(w * merged[c] for c, w in weights.items()))
    scores.sort(reverse=True)
    return [round(v, 9) for v in scores[:k]]


THREE_WAY_SQL = """
WITH Ranked AS (
  SELECT A.c1 AS x, B.c1 AS y, C.c1 AS z,
         rank() OVER (ORDER BY (0.3*A.c1 + 0.3*B.c1 + 0.3*C.c1)) AS rank
  FROM A, B, C
  WHERE A.c2 = B.c2 AND B.c2 = C.c2)
SELECT x, y, z, rank FROM Ranked WHERE rank <= 10
"""


class TestEndToEnd:
    def test_three_way_topk_matches_brute_force(self):
        db = build_db()
        report = db.execute(THREE_WAY_SQL)
        got = [
            round(0.3 * (r["A.c1"] + r["B.c1"] + r["C.c1"]), 9)
            for r in report.rows
        ]
        want = brute_force_topk(
            db, "ABC",
            [("A.c2", "B.c2"), ("B.c2", "C.c2")],
            {"A.c1": 0.3, "B.c1": 0.3, "C.c1": 0.3}, 10,
        )
        assert got == want

    def test_rank_aware_and_traditional_agree_on_results(self):
        """Both optimizers must return the same top-k scores -- only
        the plans differ."""
        db_rank = build_db()
        db_trad = build_db(config=OptimizerConfig(rank_aware=False))
        rows_rank = db_rank.execute(THREE_WAY_SQL).rows
        rows_trad = db_trad.execute(THREE_WAY_SQL).rows
        score = lambda r: round(
            0.3 * (r["A.c1"] + r["B.c1"] + r["C.c1"]), 9,
        )
        assert [score(r) for r in rows_rank] == [
            score(r) for r in rows_trad
        ]

    def test_two_way_asymmetric_weights(self):
        db = build_db(tables=("A", "B"))
        sql = """
        WITH R AS (
          SELECT A.c1 AS x, B.c1 AS y,
                 rank() OVER (ORDER BY (0.9*A.c1 + 0.1*B.c1)) AS rank
          FROM A, B WHERE A.c2 = B.c2)
        SELECT x, y, rank FROM R WHERE rank <= 7
        """
        got = [round(0.9 * r["A.c1"] + 0.1 * r["B.c1"], 9)
               for r in db.execute(sql).rows]
        want = brute_force_topk(
            db, "AB", [("A.c2", "B.c2")],
            {"A.c1": 0.9, "B.c1": 0.1}, 7,
        )
        assert got == want

    def test_k_larger_than_result_set(self):
        db = build_db(rows=20, domain=30, seed=5)
        sql = """
        WITH R AS (
          SELECT A.c1 AS x, rank() OVER (ORDER BY (A.c1 + B.c1)) AS rank
          FROM A, B WHERE A.c2 = B.c2)
        SELECT x, rank FROM R WHERE rank <= 500
        """
        report = db.execute(sql)
        want = brute_force_topk(
            db, "AB", [("A.c2", "B.c2")], {"A.c1": 1, "B.c1": 1}, 500,
        )
        assert len(report.rows) == len(want)

    def test_single_table_topk_sql(self):
        db = build_db(tables=("A",))
        report = db.execute(
            "SELECT A.c1 FROM A ORDER BY A.c1 DESC LIMIT 5",
        )
        got = [r["A.c1"] for r in report.rows]
        truth = sorted(
            (r["A.c1"] for r in db.catalog.table("A").scan()),
            reverse=True,
        )[:5]
        assert got == truth

    def test_plain_order_by_query(self):
        db = build_db(tables=("A", "B"))
        report = db.execute(
            "SELECT A.c1, B.c1 FROM A, B WHERE A.c2 = B.c2 "
            "ORDER BY A.c1",
        )
        values = [r["A.c1"] for r in report.rows]
        assert values == sorted(values, reverse=True)


class TestConfigMatrix:
    @pytest.mark.parametrize("config", [
        OptimizerConfig(),
        OptimizerConfig(enable_nrjn=False),
        OptimizerConfig(enable_hrjn=False),
        OptimizerConfig(rank_aware=False),
        OptimizerConfig(respect_pipelining=False),
        OptimizerConfig(estimation_mode="worst"),
    ], ids=["default", "hrjn-only", "nrjn-only", "traditional",
            "no-pipelining", "worst-case"])
    def test_all_configs_same_answers(self, config):
        db = build_db(config=config, rows=80)
        report = db.execute(THREE_WAY_SQL)
        want = brute_force_topk(
            db, "ABC",
            [("A.c2", "B.c2"), ("B.c2", "C.c2")],
            {"A.c1": 0.3, "B.c1": 0.3, "C.c1": 0.3}, 10,
        )
        got = [
            round(0.3 * (r["A.c1"] + r["B.c1"] + r["C.c1"]), 9)
            for r in report.rows
        ]
        assert got == want
