"""Property-based tests (hypothesis) on core invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.scoring import WeightedSum
from repro.common.types import Row
from repro.estimation.depths import (
    any_k_depths_uniform,
    top_k_depths,
    top_k_depths_average,
    top_k_depths_streams,
)
from repro.operators.hrjn import HRJN
from repro.operators.nrjn import NRJN
from repro.operators.scan import IndexScan, TableScan
from repro.operators.topk import Limit, TopK
from repro.operators.joins import HashJoin
from repro.ranking import RankedList, nra, threshold_algorithm
from repro.storage.index import SortedIndex
from repro.storage.table import Table

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
scores = st.floats(min_value=0.0, max_value=1.0, allow_nan=False,
                   width=32)

ranked_rows = st.lists(
    st.tuples(st.integers(min_value=0, max_value=5), scores),
    min_size=0, max_size=40,
)


def make_ranked_table(name, rows):
    table = Table.from_columns(name, [("key", "int"), ("score", "float")])
    for key, score in rows:
        table.insert([key, float(score)])
    table.create_index(SortedIndex(
        "%s_idx" % name, "%s.score" % name,
    ))
    return table


def brute_topk(left_rows, right_rows, k):
    combined = sorted(
        (
            float(ls) + float(rs)
            for lk, ls in left_rows
            for rk, rs in right_rows
            if lk == rk
        ),
        reverse=True,
    )
    return [round(v, 7) for v in combined[:k]]


# ----------------------------------------------------------------------
# Rank-join == join-then-sort (the paper's core correctness claim)
# ----------------------------------------------------------------------
class TestRankJoinEquivalence:
    @given(left=ranked_rows, right=ranked_rows,
           k=st.integers(min_value=1, max_value=20))
    @settings(max_examples=60, deadline=None)
    def test_hrjn_matches_brute_force(self, left, right, k):
        left_table = make_ranked_table("L", left)
        right_table = make_ranked_table("R", right)
        rank_join = HRJN(
            IndexScan(left_table, left_table.get_index("L_idx")),
            IndexScan(right_table, right_table.get_index("R_idx")),
            "L.key", "R.key", "L.score", "R.score", name="RJ",
        )
        got = [round(r["_score_RJ"], 7) for r in Limit(rank_join, k)]
        assert got == brute_topk(left, right, k)

    @given(left=ranked_rows, right=ranked_rows,
           k=st.integers(min_value=1, max_value=20))
    @settings(max_examples=60, deadline=None)
    def test_nrjn_matches_brute_force(self, left, right, k):
        left_table = make_ranked_table("L", left)
        right_table = make_ranked_table("R", right)
        rank_join = NRJN(
            IndexScan(left_table, left_table.get_index("L_idx")),
            TableScan(right_table),
            "L.key", "R.key", "L.score", "R.score", name="NR",
        )
        got = [round(r["_score_NR"], 7) for r in Limit(rank_join, k)]
        assert got == brute_topk(left, right, k)

    @given(left=ranked_rows, right=ranked_rows)
    @settings(max_examples=40, deadline=None)
    def test_hrjn_output_sorted(self, left, right):
        left_table = make_ranked_table("L", left)
        right_table = make_ranked_table("R", right)
        rank_join = HRJN(
            IndexScan(left_table, left_table.get_index("L_idx")),
            IndexScan(right_table, right_table.get_index("R_idx")),
            "L.key", "R.key", "L.score", "R.score", name="RJ",
        )
        out = [r["_score_RJ"] for r in rank_join]
        assert all(a >= b - 1e-9 for a, b in zip(out, out[1:]))

    @given(left=ranked_rows, right=ranked_rows)
    @settings(max_examples=40, deadline=None)
    def test_hrjn_full_drain_count(self, left, right):
        left_table = make_ranked_table("L", left)
        right_table = make_ranked_table("R", right)
        rank_join = HRJN(
            IndexScan(left_table, left_table.get_index("L_idx")),
            IndexScan(right_table, right_table.get_index("R_idx")),
            "L.key", "R.key", "L.score", "R.score", name="RJ",
        )
        join = HashJoin(
            TableScan(left_table), TableScan(right_table),
            "L.key", "R.key",
        )
        assert len(list(rank_join)) == len(list(join))


# ----------------------------------------------------------------------
# Estimation model invariants
# ----------------------------------------------------------------------
est_k = st.integers(min_value=1, max_value=10 ** 6)
est_s = st.floats(min_value=1e-6, max_value=1.0, allow_nan=False)
est_lr = st.integers(min_value=1, max_value=4)


class TestEstimationInvariants:
    @given(k=est_k, s=est_s)
    @settings(max_examples=100)
    def test_any_k_satisfies_theorem_1(self, k, s):
        c_left, c_right = any_k_depths_uniform(k, s)
        assert s * c_left * c_right >= k * (1 - 1e-9)

    @given(k=est_k, s=est_s, l=est_lr, r=est_lr)
    @settings(max_examples=100)
    def test_worst_dominates_average(self, k, s, l, r):
        n = 10 ** 4
        worst = top_k_depths(k, s, n=n, l=l, r=r)
        average = top_k_depths_average(k, s, n=n, l=l, r=r)
        assert average.d_left <= worst.d_left * (1 + 1e-9)
        assert average.d_right <= worst.d_right * (1 + 1e-9)

    @given(k=st.integers(min_value=1, max_value=10 ** 5), s=est_s)
    @settings(max_examples=100)
    def test_depths_positive_and_finite(self, k, s):
        estimate = top_k_depths(k, s)
        assert 0 < estimate.d_left < float("inf")
        assert 0 < estimate.d_right < float("inf")

    @given(s=est_s, l=est_lr, r=est_lr,
           k1=st.integers(min_value=1, max_value=1000),
           k2=st.integers(min_value=1, max_value=1000))
    @settings(max_examples=100)
    def test_depth_monotone_in_k(self, s, l, r, k1, k2):
        n = 10 ** 4
        lo, hi = sorted((k1, k2))
        small = top_k_depths_streams(lo, s, n, l=l, r=r)
        large = top_k_depths_streams(hi, s, n, l=l, r=r)
        assert small.d_left <= large.d_left * (1 + 1e-9)

    @given(k=est_k, s=est_s)
    @settings(max_examples=50)
    def test_streams_reduce_to_paper(self, k, s):
        n = 5000
        paper = top_k_depths(k, s, n=n, l=2, r=2)
        streams = top_k_depths_streams(k, s, n, l=2, r=2)
        assert math.isclose(paper.d_left, streams.d_left, rel_tol=1e-6)


# ----------------------------------------------------------------------
# Rank aggregation and TopK invariants
# ----------------------------------------------------------------------
class TestAggregationInvariants:
    @given(data=st.lists(
        st.tuples(scores, scores, scores), min_size=1, max_size=50,
    ), k=st.integers(min_value=1, max_value=10))
    @settings(max_examples=50, deadline=None)
    def test_ta_equals_nra(self, data, k):
        k = min(k, len(data))
        lists = [
            RankedList("L%d" % j, [(i, row[j]) for i, row in enumerate(data)])
            for j in range(3)
        ]
        ta_ids = [oid for oid, _ in threshold_algorithm(lists, k)]
        for ranked in lists:
            ranked.reset_stats()
        nra_ids = [oid for oid, _ in nra(lists, k)]
        assert ta_ids == nra_ids

    @given(values=st.lists(scores, min_size=0, max_size=60),
           k=st.integers(min_value=0, max_value=20))
    @settings(max_examples=50, deadline=None)
    def test_topk_operator_matches_sorted_prefix(self, values, k):
        table = Table.from_columns("T", [("score", "float")])
        for value in values:
            table.insert([float(value)])
        got = [r["T.score"] for r in TopK(TableScan(table), k, "T.score")]
        want = sorted((float(v) for v in values), reverse=True)[:k]
        assert got == want

    @given(weights=st.lists(
        st.floats(min_value=0.01, max_value=5.0, allow_nan=False),
        min_size=1, max_size=4,
    ), base=st.lists(scores, min_size=4, max_size=4))
    @settings(max_examples=50)
    def test_weighted_sum_monotone(self, weights, base):
        f = WeightedSum(weights)
        inputs = base[:len(weights)]
        bumped = list(inputs)
        bumped[0] = min(1.0, bumped[0] + 0.1)
        assert f(bumped) >= f(inputs) - 1e-9

    @given(rows=ranked_rows)
    @settings(max_examples=30, deadline=None)
    def test_row_merge_is_commutative_on_disjoint(self, rows):
        left = Row({"L.x": 1})
        right = Row({"R.y": 2})
        assert left.merge(right) == right.merge(left)


class TestMoreRankJoinVariants:
    @given(left=ranked_rows, right=ranked_rows,
           k=st.integers(min_value=1, max_value=15))
    @settings(max_examples=40, deadline=None)
    def test_jstar_matches_brute_force(self, left, right, k):
        from repro.operators.jstar import JStarRankJoin

        left_table = make_ranked_table("L", left)
        right_table = make_ranked_table("R", right)
        rank_join = JStarRankJoin(
            IndexScan(left_table, left_table.get_index("L_idx")),
            IndexScan(right_table, right_table.get_index("R_idx")),
            "L.key", "R.key", "L.score", "R.score", name="JS",
        )
        got = [round(r["_score_JS"], 7) for r in Limit(rank_join, k)]
        assert got == brute_topk(left, right, k)

    @given(
        data=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=4),
                scores, scores, scores,
            ),
            min_size=0, max_size=25,
        ),
        k=st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=40, deadline=None)
    def test_mhrjn_three_way_matches_brute_force(self, data, k):
        from repro.operators.mhrjn import MHRJN

        tables = []
        for j, name in enumerate(("X", "Y", "Z")):
            tables.append(make_ranked_table(
                name, [(d[0], d[1 + j]) for d in data],
            ))
        operator = MHRJN(
            [IndexScan(t, t.get_index("%s_idx" % t.name))
             for t in tables],
            ["X.key", "Y.key", "Z.key"],
            ["X.score", "Y.score", "Z.score"],
            name="M",
        )
        got = [round(r["_score_M"], 7) for r in Limit(operator, k)]
        truth = sorted(
            (
                ra["X.score"] + rb["Y.score"] + rc["Z.score"]
                for ra in tables[0].scan()
                for rb in tables[1].scan()
                if ra["X.key"] == rb["Y.key"]
                for rc in tables[2].scan()
                if rb["Y.key"] == rc["Z.key"]
            ),
            reverse=True,
        )
        assert got == [round(v, 7) for v in truth[:k]]
