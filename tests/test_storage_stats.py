"""Unit tests for statistics collection and selectivity estimation."""

import pytest

from repro.common.errors import CatalogError
from repro.storage.stats import (
    ColumnStats,
    TableStats,
    estimate_join_selectivity,
    harmonic_number,
    measured_join_selectivity,
)
from repro.storage.table import Table


class TestColumnStats:
    def test_from_numeric_values(self):
        stats = ColumnStats.from_values("T.x", [0.0, 0.5, 1.0])
        assert stats.count == 3
        assert stats.distinct == 3
        assert stats.minimum == 0.0
        assert stats.maximum == 1.0
        assert stats.decrement_slab == pytest.approx(0.5)

    def test_empty_column(self):
        stats = ColumnStats.from_values("T.x", [])
        assert stats.count == 0
        assert stats.decrement_slab is None

    def test_nulls_skipped(self):
        stats = ColumnStats.from_values("T.x", [1.0, None, 2.0])
        assert stats.count == 2

    def test_single_value_slab_zero(self):
        stats = ColumnStats.from_values("T.x", [3.0])
        assert stats.decrement_slab == 0.0

    def test_string_column_has_no_slab(self):
        stats = ColumnStats.from_values("T.x", ["a", "b"])
        assert stats.decrement_slab is None
        assert stats.minimum == "a"

    def test_equality_selectivity(self):
        stats = ColumnStats.from_values("T.x", [1, 1, 2, 3])
        assert stats.selectivity_of_equality() == pytest.approx(1 / 3)

    def test_equality_selectivity_empty(self):
        assert ColumnStats.from_values("T.x", []).selectivity_of_equality() == 0.0


class TestTableStats:
    def make(self):
        table = Table.from_columns("T", [("k", "int"), ("s", "float")])
        for i in range(10):
            table.insert([i % 4, i / 10.0])
        return TableStats.analyze(table)

    def test_cardinality(self):
        assert self.make().cardinality == 10

    def test_column_lookup(self):
        stats = self.make()
        assert stats.column("T.k").distinct == 4

    def test_unknown_column(self):
        with pytest.raises(CatalogError):
            self.make().column("T.zz")


class TestJoinSelectivity:
    def test_distinct_value_formula(self):
        left = Table.from_columns("L", [("k", "int")])
        right = Table.from_columns("R", [("k", "int")])
        for i in range(10):
            left.insert([i % 5])
            right.insert([i % 2])
        s = estimate_join_selectivity(
            TableStats.analyze(left), TableStats.analyze(right),
            "L.k", "R.k",
        )
        assert s == pytest.approx(1 / 5)

    def test_measured_selectivity(self):
        assert measured_join_selectivity(50, 10, 10) == 0.5

    def test_measured_selectivity_empty(self):
        assert measured_join_selectivity(0, 0, 10) == 0.0

    def test_measured_selectivity_clamped(self):
        assert measured_join_selectivity(200, 10, 10) == 1.0


class TestHarmonic:
    def test_small(self):
        assert harmonic_number(1) == 1.0
        assert harmonic_number(2) == pytest.approx(1.5)

    def test_zero(self):
        assert harmonic_number(0) == 0.0

    def test_large_asymptotic(self):
        exact = sum(1.0 / i for i in range(1, 2001))
        assert harmonic_number(2000) == pytest.approx(exact, rel=1e-6)
