"""Shared-memory shard transport: codec round-trip and lifecycle.

Covers the three contracts of :mod:`repro.storage.shm` and its use by
:class:`~repro.executor.shard_pool.ShardPool`:

* encode/attach round-trip preserves every column value (typed and
  degraded/object), table lengths, and index permutations;
* segments are generation-keyed: a catalog version bump frees the old
  segment and publishes a new one;
* segments never leak: pool shutdown unlinks the segment (attaching by
  name fails afterwards and nothing is left under ``/dev/shm``).
"""

import glob
import os

import pytest
from multiprocessing import shared_memory

from repro.common.errors import ExecutionError
from repro.common.rng import make_rng
from repro.executor.database import Database
from repro.optimizer.enumerator import OptimizerConfig
from repro.storage import shm
from repro.storage.index import SortedIndex
from repro.storage.table import Table


def sample_table(name="T", n=50, seed=3):
    rng = make_rng(seed)
    table = Table.from_columns(
        name,
        [("id", "int"), ("score", "float"), ("tag", "str")],
        rows=[
            [i, float(rng.uniform(0, 1)), "tag-%d" % (i % 7,)]
            for i in range(n)
        ],
    )
    table.create_index(SortedIndex("%s_idx" % name, "%s.score" % name))
    return table


def segment_name(tag):
    return "repro_test_%d_%s" % (os.getpid(), tag)


def parallel_db(rows=300, key_domain=40, seed=17):
    rng = make_rng(seed)
    db = Database(config=OptimizerConfig(enable_nrjn=False))
    db.create_table("A", [("c1", "float"), ("c2", "int")], rows=[
        [float(rng.uniform(0, 1)), int(rng.integers(0, key_domain))]
        for _ in range(rows)
    ])
    db.create_table("B", [("c1", "int"), ("c2", "float")], rows=[
        [int(rng.integers(0, key_domain)), float(rng.uniform(0, 1))]
        for _ in range(rows)
    ])
    db.analyze()
    return db


SQL = """
WITH Ranked AS (
  SELECT A.c1 AS x, B.c2 AS y,
         rank() OVER (ORDER BY (0.5*A.c1 + 0.5*B.c2)) AS rank
  FROM A, B WHERE A.c2 = B.c1)
SELECT x, y, rank FROM Ranked WHERE rank <= 15
"""


def live_segments():
    """Names of this-process repro segments currently in /dev/shm."""
    pattern = "/dev/shm/repro_%d_g*" % (os.getpid(),)
    return sorted(os.path.basename(p) for p in glob.glob(pattern))


# ----------------------------------------------------------------------
# Codec round-trip
# ----------------------------------------------------------------------
class TestCodecRoundTrip:
    def test_columns_and_indexes_survive(self):
        table = sample_table()
        name = segment_name("roundtrip")
        segment = shm.encode_tables({"T": table}, name)
        try:
            view = shm.attach(name)
            try:
                decoded = view.table("T")
                assert decoded.length == len(table)
                assert decoded.names == tuple(
                    table.schema.qualified_names(),
                )
                for qualified in decoded.names:
                    assert (list(decoded.columns[qualified])
                            == list(table.column(qualified)))
                index = table.get_index("T_idx")
                assert (list(decoded.order("T_idx"))
                        == list(index.order()))
            finally:
                view.close()
        finally:
            segment.close()
            segment.unlink()

    def test_degraded_object_column_round_trips(self):
        table = Table.from_columns("T", [("a", "int")])
        table.insert([1])
        table.insert([2 ** 70])  # degrades the column
        name = segment_name("degraded")
        segment = shm.encode_tables({"T": table}, name)
        try:
            view = shm.attach(name)
            try:
                assert list(view.table("T").columns["T.a"]) \
                    == [1, 2 ** 70]
            finally:
                view.close()
        finally:
            segment.close()
            segment.unlink()

    def test_unknown_table_and_index_raise(self):
        table = sample_table()
        name = segment_name("unknown")
        segment = shm.encode_tables({"T": table}, name)
        try:
            view = shm.attach(name)
            try:
                with pytest.raises(ExecutionError):
                    view.table("missing")
                with pytest.raises(ExecutionError):
                    view.table("T").order("missing")
            finally:
                view.close()
        finally:
            segment.close()
            segment.unlink()

    def test_empty_catalog_encodes(self):
        name = segment_name("empty")
        segment = shm.encode_tables({}, name)
        try:
            view = shm.attach(name)
            try:
                assert view.tables == {}
            finally:
                view.close()
        finally:
            segment.close()
            segment.unlink()


# ----------------------------------------------------------------------
# Pool lifecycle
# ----------------------------------------------------------------------
class TestSegmentLifecycle:
    def test_generation_changes_on_catalog_version_bump(self):
        db = parallel_db()
        pool = db.shard_pool
        try:
            first = pool.segment_name  # force generation 1
            assert first in live_segments()
            db.catalog.tables()["A"].insert([0.5, 1])
            second = pool.segment_name  # version moved: generation 2
            assert second != first
            # The old generation was freed, the new one is live.
            assert first not in live_segments()
            assert second in live_segments()
        finally:
            pool.shutdown()

    def test_pool_results_survive_generation_change(self):
        db = parallel_db()
        try:
            serial = db.execute(SQL, parallel="off").rows
            pooled = db.execute(SQL, parallel="pool", shards=2).rows
            assert pooled == serial
            db.shard_pool.shutdown()  # force a fresh generation
            again = db.execute(SQL, parallel="pool", shards=2).rows
            assert again == serial
        finally:
            db.shard_pool.shutdown()

    def test_shutdown_unlinks_segment(self):
        db = parallel_db()
        pool = db.shard_pool
        name = pool.segment_name
        assert name in live_segments()
        pool.shutdown()
        assert name not in live_segments()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)
        assert pool._segment is None and pool._segment_name is None

    def test_no_segments_survive_pool_query(self):
        before = live_segments()
        db = parallel_db()
        serial = db.execute(SQL, parallel="off").rows
        pooled = db.execute(SQL, parallel="pool", shards=2).rows
        assert pooled == serial
        db.shard_pool.shutdown()
        assert live_segments() == before

    def test_shutdown_is_idempotent(self):
        db = parallel_db()
        assert db.shard_pool.segment_name
        db.shard_pool.shutdown()
        db.shard_pool.shutdown()

    def test_metrics_record_segment_lifecycle(self):
        db = parallel_db()
        assert db.shard_pool.segment_name
        db.shard_pool.shutdown()
        def total(name):
            metric = db.metrics.get(name)
            assert metric is not None, name
            return sum(value for _labels, value in metric.samples())

        assert total("shm_segments_created_total") >= 1
        assert total("shm_segments_freed_total") >= 1
        assert total("shm_segment_bytes") == 0
