"""White-box tests for enumerator internals: splits, order demotion,
INL eligibility, and builder error paths."""

import pytest

from repro.common.errors import OptimizerError
from repro.cost.model import CostModel
from repro.data.catalogs import make_abc_catalog
from repro.optimizer.builder import PlanBuilder
from repro.optimizer.enumerator import Optimizer, OptimizerConfig
from repro.optimizer.expressions import ScoreExpression
from repro.optimizer.plans import AccessPlan, FilterPlan
from repro.optimizer.properties import OrderProperty
from repro.optimizer.query import FilterPredicate, JoinPredicate, RankQuery


@pytest.fixture(scope="module")
def catalog():
    return make_abc_catalog(rows=60)


@pytest.fixture(scope="module")
def optimizer(catalog):
    return Optimizer(catalog, CostModel(), OptimizerConfig())


def chain_query():
    return RankQuery(
        tables="ABC",
        predicates=[JoinPredicate("A.c2", "B.c2"),
                    JoinPredicate("B.c2", "C.c2")],
        ranking=ScoreExpression({"A.c1": 0.5, "B.c1": 0.5}),
        k=3,
    )


class TestSplits:
    def test_both_orientations_generated(self, optimizer):
        query = chain_query()
        splits = list(optimizer._splits(query, frozenset("AB")))
        assert (frozenset("A"), frozenset("B")) in splits
        assert (frozenset("B"), frozenset("A")) in splits

    def test_disconnected_sides_skipped(self, optimizer):
        query = chain_query()
        splits = list(optimizer._splits(query, frozenset("ABC")))
        sides = {side for split in splits for side in split}
        assert frozenset("AC") not in sides  # A-C not connected.

    def test_each_unordered_split_twice(self, optimizer):
        query = chain_query()
        splits = list(optimizer._splits(query, frozenset("ABC")))
        unordered = {frozenset((left, right)) for left, right in splits}
        assert len(splits) == 2 * len(unordered)


class TestOrderDemotion:
    def test_uninteresting_order_becomes_dc(self, optimizer):
        """A produced order with no future benefit compares as DC."""
        query = chain_query()
        order = OrderProperty.on("A.c1")
        # A.c1 is interesting at {A} (rank column) but retired at ABC.
        at_leaf = optimizer._effective_order(query, frozenset("A"), order)
        assert not at_leaf.is_none
        at_root = optimizer._effective_order(
            query, frozenset("ABC"), order,
        )
        assert at_root.is_none

    def test_dc_stays_dc(self, optimizer):
        query = chain_query()
        assert optimizer._effective_order(
            query, frozenset("A"), OrderProperty.none(),
        ).is_none


class TestInlEligibility:
    def test_access_plan_eligible(self, optimizer):
        plan = AccessPlan(CostModel(), "B", 60)
        assert optimizer._inl_eligible(plan)

    def test_filtered_table_not_eligible(self, optimizer):
        base = AccessPlan(CostModel(), "B", 60)
        filtered = FilterPlan(
            CostModel(), base,
            [FilterPredicate("B.c2", "<=", 5)], 0.5,
        )
        assert not optimizer._inl_eligible(filtered)


class TestFilterSelectivityHelper:
    def test_no_filters(self, optimizer):
        query = chain_query()
        filters, selectivity = optimizer._filter_selectivity(query, "A")
        assert filters is None and selectivity == 1.0

    def test_with_filter(self, catalog):
        optimizer = Optimizer(catalog, CostModel(), OptimizerConfig())
        query = RankQuery(
            tables="AB",
            predicates=[JoinPredicate("A.c2", "B.c2")],
            ranking=ScoreExpression({"A.c1": 1.0, "B.c1": 1.0}), k=2,
            filters=[FilterPredicate("A.c2", "<=", 9.0)],
        )
        filters, selectivity = optimizer._filter_selectivity(query, "A")
        assert filters and 0.0 < selectivity <= 1.0


class TestBuilderErrors:
    def test_unknown_plan_node_rejected(self, catalog):
        class FakePlan:
            pass

        with pytest.raises(OptimizerError, match="cannot build"):
            PlanBuilder(catalog).build(FakePlan())

    def test_sort_fallback_when_no_natural_plan(self, catalog):
        """With eager enforcement off and no usable index order, the
        optimizer still returns a plan (sort glued at the root)."""
        optimizer = Optimizer(
            catalog, CostModel(),
            OptimizerConfig(eager_enforcement=False, enable_hrjn=False,
                            enable_nrjn=False, rank_aware=False),
        )
        result = optimizer.optimize(chain_query())
        assert result.best_plan.order.covers(result.required_order)
