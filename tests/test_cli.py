"""Tests for the ``python -m repro`` CLI."""

import pytest

from repro.__main__ import main


class TestCli:
    def test_demo(self, capsys):
        assert main(["--rows", "300", "demo"]) == 0
        out = capsys.readouterr().out
        assert "best plan" in out
        assert "top-5 results" in out

    def test_figures(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out and "Figure 6" in out
        assert "k* = " in out

    def test_sql_topk(self, capsys):
        assert main([
            "--rows", "200", "sql",
            "SELECT A.c1 FROM A ORDER BY A.c1 DESC LIMIT 3",
        ]) == 0
        out = capsys.readouterr().out
        assert "3 rows:" in out

    def test_sql_join_query(self, capsys):
        assert main([
            "--rows", "200", "sql",
            "WITH R AS (SELECT A.c1 AS x, rank() OVER "
            "(ORDER BY (A.c1 + B.c1)) AS r FROM A, B "
            "WHERE A.c2 = B.c2) SELECT x, r FROM R WHERE r <= 4",
        ]) == 0
        out = capsys.readouterr().out
        assert "4 rows:" in out

    def test_sql_limit_flag(self, capsys):
        assert main([
            "--rows", "200", "sql", "--limit", "2",
            "SELECT A.c1 FROM A ORDER BY A.c1 DESC LIMIT 10",
        ]) == 0
        out = capsys.readouterr().out
        assert "... (8 more)" in out

    def test_report(self, capsys):
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "reproduction report" in out
        assert "Figure 13" in out and "Table 1" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_demo_checkpoint_every(self, capsys):
        assert main(["--rows", "300", "--checkpoint-every", "2",
                     "demo"]) == 0
        out = capsys.readouterr().out
        assert "top-5 results" in out
        assert "recovery: path=direct" in out
        assert "checkpoints: taken=" in out

    def test_sql_checkpoint_every_matches_plain_run(self, capsys):
        query = ("WITH R AS (SELECT A.c1 AS x, rank() OVER "
                 "(ORDER BY (A.c1 + B.c1)) AS r FROM A, B "
                 "WHERE A.c2 = B.c2) SELECT x, r FROM R WHERE r <= 4")
        assert main(["--rows", "200", "sql", query]) == 0
        plain = capsys.readouterr().out
        assert main(["--rows", "200", "--checkpoint-every", "1",
                     "sql", query]) == 0
        guarded = capsys.readouterr().out
        assert "4 rows:" in guarded
        # Same generated data, same answer rows.
        assert [line for line in plain.splitlines()
                if line.startswith("  Row")] == \
               [line for line in guarded.splitlines()
                if line.startswith("  Row")]
