"""Table aliases and self-joins through the full stack.

The flagship use: "find the top-k most similar *pairs*" -- a rank
self-join of a relation with itself under different aliases.
"""

import pytest

from repro.common.errors import OptimizerError, ParseError
from repro.common.rng import make_rng
from repro.executor.database import Database
from repro.sql.parser import parse_query
from repro.storage.table import Table


class TestAliasedTable:
    def make_table(self):
        table = Table.from_columns(
            "A", [("c1", "float"), ("c2", "int")],
        )
        table.insert([0.9, 1])
        table.insert([0.1, 2])
        from repro.storage.index import SortedIndex

        table.create_index(SortedIndex("A_c1_idx", "A.c1"))
        return table

    def test_renamed_schema_and_rows(self):
        renamed = self.make_table().aliased("a1")
        assert renamed.name == "a1"
        assert renamed.schema.qualified_names() == ("a1.c1", "a1.c2")
        assert next(renamed.scan())["a1.c1"] == 0.9

    def test_indexes_renamed(self):
        renamed = self.make_table().aliased("a1")
        index = renamed.find_index_on("a1.c1")
        assert index is not None
        assert index.top()[0] == 0.9

    def test_identity_alias_returns_self(self):
        table = self.make_table()
        assert table.aliased("A") is table

    def test_original_untouched(self):
        table = self.make_table()
        renamed = table.aliased("a1")
        renamed.insert([0.5, 3])
        assert table.cardinality == 2


class TestParserAliases:
    def test_as_keyword_alias(self):
        query = parse_query("SELECT x.c1 FROM A AS x")
        assert query.aliases == {"x": "A"}

    def test_self_join_aliases(self):
        query = parse_query(
            "SELECT a1.c1, a2.c1 FROM A a1, A a2 "
            "WHERE a1.c2 = a2.c2",
        )
        assert query.tables == frozenset({"a1", "a2"})
        assert query.aliases == {"a1": "A", "a2": "A"}

    def test_duplicate_alias_rejected(self):
        with pytest.raises(ParseError, match="duplicate table alias"):
            parse_query("SELECT x.c1 FROM A x, B x")

    def test_missing_alias_entries_rejected(self):
        from repro.optimizer.query import RankQuery

        with pytest.raises(OptimizerError, match="aliases missing"):
            RankQuery(tables="AB", aliases={"A": "A"})


class TestSelfJoinExecution:
    def make_db(self, rows=150, seed=77):
        rng = make_rng(seed)
        db = Database()
        db.create_table(
            "Items", [("score", "float"), ("grp", "int")],
            rows=[[float(rng.uniform(0, 1)), int(rng.integers(0, 8))]
                  for _ in range(rows)],
        )
        db.analyze()
        return db

    SQL = """
    WITH Pairs AS (
      SELECT a1.score AS x, a2.score AS y,
             rank() OVER (ORDER BY (a1.score + a2.score)) AS rank
      FROM Items a1, Items a2
      WHERE a1.grp = a2.grp)
    SELECT x, y, rank FROM Pairs WHERE rank <= 8
    """

    def brute_force(self, db, k):
        rows = list(db.catalog.table("Items").scan())
        scores = sorted(
            (
                a["Items.score"] + b["Items.score"]
                for a in rows for b in rows
                if a["Items.grp"] == b["Items.grp"]
            ),
            reverse=True,
        )
        return [round(v, 9) for v in scores[:k]]

    def test_top_pairs_match_brute_force(self):
        db = self.make_db()
        report = db.execute(self.SQL)
        got = [round(r["a1.score"] + r["a2.score"], 9)
               for r in report.rows]
        assert got == self.brute_force(db, 8)

    def test_rank_join_used_for_self_join(self):
        db = self.make_db(rows=800)
        report = db.execute(self.SQL)
        assert report.rank_join_snapshots()
        # Early out on at least one aliased input.
        top = report.rank_join_snapshots()[0]
        assert min(top.pulled) < 800

    def test_base_catalog_unpolluted(self):
        db = self.make_db()
        db.execute(self.SQL)
        assert set(db.catalog.tables()) == {"Items"}

    def test_explain_self_join(self):
        db = self.make_db()
        result = db.explain(self.SQL)
        assert result.best_plan.tables == frozenset({"a1", "a2"})
