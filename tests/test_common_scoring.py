"""Unit tests for monotone scoring functions."""

import pytest

from repro.common.errors import EstimationError
from repro.common.scoring import (
    AverageScore,
    MaxScore,
    MinScore,
    SumScore,
    WeightedSum,
)


class TestSumScore:
    def test_combines(self):
        assert SumScore()((1.0, 2.0, 3.0)) == 6.0

    def test_empty_sum_is_zero(self):
        assert SumScore()(()) == 0.0

    def test_upper_bound_equals_combine(self):
        f = SumScore()
        assert f.upper_bound((0.5, 0.7)) == f.combine((0.5, 0.7))


class TestAverageScore:
    def test_combines(self):
        assert AverageScore()((1.0, 3.0)) == 2.0

    def test_empty_rejected(self):
        with pytest.raises(EstimationError):
            AverageScore()(())


class TestMinMax:
    def test_min(self):
        assert MinScore()((0.3, 0.9)) == 0.3

    def test_max(self):
        assert MaxScore()((0.3, 0.9)) == 0.9


class TestWeightedSum:
    def test_combines(self):
        f = WeightedSum([0.3, 0.7])
        assert f((1.0, 1.0)) == pytest.approx(1.0)
        assert f((1.0, 0.0)) == pytest.approx(0.3)

    def test_arity_enforced(self):
        with pytest.raises(EstimationError, match="expects 2 scores"):
            WeightedSum([0.5, 0.5])((1.0,))

    def test_negative_weight_rejected(self):
        with pytest.raises(EstimationError, match="non-negative"):
            WeightedSum([0.5, -0.5])

    def test_empty_weights_rejected(self):
        with pytest.raises(EstimationError):
            WeightedSum([])

    def test_monotonicity(self):
        f = WeightedSum([0.4, 0.6])
        assert f((0.5, 0.5)) <= f((0.6, 0.5))
        assert f((0.5, 0.5)) <= f((0.5, 0.6))
