"""Unit tests for the simulation-based depth estimator."""

import pytest

from repro.common.errors import EstimationError
from repro.estimation.depths import top_k_depths
from repro.estimation.simulate import simulated_depths
from repro.experiments.harness import measure_depths


class TestSimulatedDepths:
    def test_tracks_measurement(self):
        truth = measure_depths(3000, 0.01, 30, seed=44)
        actual = sum(truth.actual) / 2.0
        estimate = simulated_depths(30, 0.01, 3000, trials=3, seed=45)
        assert estimate.d_left == pytest.approx(actual, rel=0.4)

    def test_within_worst_case_bound(self):
        estimate = simulated_depths(30, 0.01, 3000, trials=2, seed=46)
        worst = top_k_depths(30, 0.01)
        assert estimate.d_left <= worst.d_left * 1.3

    def test_deterministic_given_seed(self):
        a = simulated_depths(10, 0.02, 1000, trials=2, seed=47)
        b = simulated_depths(10, 0.02, 1000, trials=2, seed=47)
        assert a.d_left == b.d_left and a.d_right == b.d_right

    def test_invalid_inputs(self):
        with pytest.raises(EstimationError):
            simulated_depths(0, 0.1, 100)
        with pytest.raises(EstimationError):
            simulated_depths(5, 0.1, 100, trials=0)

    def test_infeasible_k_detected(self):
        with pytest.raises(EstimationError, match="only"):
            simulated_depths(10 ** 6, 0.01, 100, trials=1, seed=48)


class TestOptimizerJStar:
    def test_jstar_plan_generated_and_executes(self):
        from repro.common.rng import make_rng
        from repro.executor.database import Database
        from repro.optimizer.enumerator import OptimizerConfig

        rng = make_rng(99)
        db = Database(config=OptimizerConfig(
            enable_hrjn=False, enable_nrjn=False, enable_jstar=True,
        ))
        for name in ("A", "B"):
            db.create_table(
                name, [("c1", "float"), ("c2", "int")],
                rows=[[float(rng.uniform(0, 1)),
                       int(rng.integers(0, 10))] for _ in range(150)],
            )
        db.analyze()
        report = db.execute("""
            WITH R AS (
              SELECT A.c1 AS x, rank() OVER
                     (ORDER BY (A.c1 + B.c1)) AS rank
              FROM A, B WHERE A.c2 = B.c2)
            SELECT x, rank FROM R WHERE rank <= 5""")
        assert len(report.rows) == 5
        assert any(snap.name.startswith("JSTAR")
                   for snap in report.operators)

    def test_jstar_results_match_hrjn_plan(self):
        from repro.common.rng import make_rng
        from repro.executor.database import Database
        from repro.optimizer.enumerator import OptimizerConfig

        sql = """
            WITH R AS (
              SELECT A.c1 AS x, rank() OVER
                     (ORDER BY (A.c1 + B.c1)) AS rank
              FROM A, B WHERE A.c2 = B.c2)
            SELECT x, rank FROM R WHERE rank <= 8"""

        def build(config):
            rng = make_rng(7)
            db = Database(config=config)
            for name in ("A", "B"):
                db.create_table(
                    name, [("c1", "float"), ("c2", "int")],
                    rows=[[float(rng.uniform(0, 1)),
                           int(rng.integers(0, 10))]
                          for _ in range(150)],
                )
            db.analyze()
            return db.execute(sql)

        jstar_rows = build(OptimizerConfig(
            enable_hrjn=False, enable_nrjn=False, enable_jstar=True,
        )).rows
        hrjn_rows = build(OptimizerConfig(enable_nrjn=False)).rows
        assert ([r["A.c1"] for r in jstar_rows]
                == [r["A.c1"] for r in hrjn_rows])
