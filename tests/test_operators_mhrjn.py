"""Unit tests for the m-way hash rank-join operator."""

import pytest

from repro.common.errors import ExecutionError
from repro.common.rng import make_rng
from repro.operators.hrjn import HRJN
from repro.operators.mhrjn import MHRJN
from repro.operators.scan import IndexScan, TableScan
from repro.operators.topk import Limit
from repro.storage.index import SortedIndex
from repro.storage.table import Table


def make_tables(names, n=120, domain=8, seed=0):
    rng = make_rng(seed)
    tables = []
    for name in names:
        table = Table.from_columns(
            name, [("key", "int"), ("score", "float")],
        )
        for _ in range(n):
            table.insert([
                int(rng.integers(0, domain)), float(rng.uniform(0, 1)),
            ])
        table.create_index(SortedIndex(
            "%s_score_idx" % name, "%s.score" % name,
        ))
        tables.append(table)
    return tables


def mhrjn_over(tables, **kwargs):
    return MHRJN(
        [IndexScan(t, t.get_index("%s_score_idx" % t.name)) for t in tables],
        ["%s.key" % t.name for t in tables],
        ["%s.score" % t.name for t in tables],
        name="M", **kwargs,
    )


def brute_force(tables, k):
    def recurse(index, key, total):
        if index == len(tables):
            results.append(total)
            return
        for row in tables[index].scan():
            row_key = row["%s.key" % tables[index].name]
            if key is not None and row_key != key:
                continue
            recurse(index + 1, row_key,
                    total + row["%s.score" % tables[index].name])

    results = []
    recurse(0, None, 0.0)
    results.sort(reverse=True)
    return [round(v, 9) for v in results[:k]]


class TestCorrectness:
    def test_three_way_matches_brute_force(self):
        tables = make_tables("XYZ", seed=1)
        rows = list(Limit(mhrjn_over(tables), 10))
        got = [round(r["_score_M"], 9) for r in rows]
        assert got == brute_force(tables, 10)

    def test_four_way_matches_brute_force(self):
        tables = make_tables("WXYZ", n=60, seed=2)
        rows = list(Limit(mhrjn_over(tables), 8))
        got = [round(r["_score_M"], 9) for r in rows]
        assert got == brute_force(tables, 8)

    def test_two_way_agrees_with_hrjn(self):
        tables = make_tables("XY", seed=3)
        m_scores = [
            round(r["_score_M"], 9)
            for r in Limit(mhrjn_over(tables), 15)
        ]
        x, y = tables
        hrjn = HRJN(
            IndexScan(x, x.get_index("X_score_idx")),
            IndexScan(y, y.get_index("Y_score_idx")),
            "X.key", "Y.key", "X.score", "Y.score", name="H",
        )
        h_scores = [round(r["_score_H"], 9) for r in Limit(hrjn, 15)]
        assert m_scores == h_scores

    def test_scores_non_increasing(self):
        tables = make_tables("XYZ", seed=4)
        scores = [r["_score_M"] for r in Limit(mhrjn_over(tables), 40)]
        assert all(a >= b - 1e-12 for a, b in zip(scores, scores[1:]))

    def test_empty_input_empty_result(self):
        tables = make_tables("XY", seed=5)
        empty = make_tables(["Z"], n=0, seed=6)
        rows = list(mhrjn_over(tables + empty))
        assert rows == []


class TestBehaviour:
    def test_early_out(self):
        tables = make_tables("XYZ", n=1500, domain=10, seed=7)
        operator = mhrjn_over(tables)
        list(Limit(operator, 5))
        assert all(depth < 1500 for depth in operator.depths)

    def test_tighter_than_binary_pipeline(self):
        """The m-way threshold sees all inputs, so total consumption
        should not exceed the left-deep binary pipeline's by much (and
        typically beats it)."""
        from repro.experiments.harness import build_hrjn_pipeline

        tables = make_tables("XYZ", n=1500, domain=10, seed=8)
        m_op = mhrjn_over(tables)
        list(Limit(m_op, 10))
        m_total = sum(m_op.depths)

        rows, joins = build_hrjn_pipeline(
            tables,
            ["X.key", "Y.key", "Z.key"],
            ["X.score", "Y.score", "Z.score"],
            10,
        )
        pipeline_total = sum(sum(j.depths) for j in joins)
        assert m_total <= pipeline_total * 1.2

    def test_validation(self):
        tables = make_tables("XY", seed=9)
        with pytest.raises(ExecutionError, match="at least two"):
            MHRJN([TableScan(tables[0])], ["X.key"], ["X.score"])
        with pytest.raises(ExecutionError, match="per input"):
            MHRJN(
                [TableScan(tables[0]), TableScan(tables[1])],
                ["X.key"], ["X.score", "Y.score"],
            )

    def test_unsorted_input_detected(self):
        bad = Table.from_columns("X", [("key", "int"), ("score", "float")])
        bad.insert([1, 0.1])
        bad.insert([1, 0.9])
        good = make_tables(["Y"], seed=10)[0]
        operator = MHRJN(
            [TableScan(bad),
             IndexScan(good, good.get_index("Y_score_idx"))],
            ["X.key", "Y.key"], ["X.score", "Y.score"],
        )
        with pytest.raises(ExecutionError, match="not sorted"):
            list(operator)

    def test_threshold_lifecycle(self):
        tables = make_tables("XYZ", seed=11)
        operator = mhrjn_over(tables)
        operator.open()
        assert operator.threshold() is None
        row = operator.next()
        if row is not None:
            assert row["_score_M"] >= operator.threshold() - 1e-9
        operator.close()
