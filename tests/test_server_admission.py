"""Admission control, the degradation ladder, and thread safety.

Covers cost-based queue classing, the shed ladder (reduced ``k`` ->
forced sort fallback -> :class:`OverloadError`), tenant aggregate
caps, and the concurrency contracts the server relies on: a
thread-safe :class:`PlanCache` and :class:`MetricsRegistry`.
"""

import asyncio
import threading

import pytest

from repro.common.errors import OverloadError
from repro.common.rng import make_rng
from repro.executor.database import Database
from repro.executor.plan_cache import PlanCache
from repro.observability.metrics import MetricsRegistry
from repro.optimizer.enumerator import OptimizerConfig
from repro.robustness.budget import ResourceBudget, TenantBudget
from repro.server import AdmissionController, AdmissionPolicy, Server
from repro.server.admission import BATCH, INTERACTIVE
from repro.sql.parser import parse_query

SQL = """
WITH Ranked AS (
  SELECT A.c1 AS x, B.c2 AS y,
         rank() OVER (ORDER BY (0.3*A.c1 + 0.7*B.c2)) AS rank
  FROM A, B WHERE A.c2 = B.c1)
SELECT x, y, rank FROM Ranked WHERE rank <= 5
"""

BIG_SQL = SQL.replace("rank <= 5", "rank <= 40")


def make_db(rows=400, seed=3, domain=15):
    rng = make_rng(seed)
    db = Database(config=OptimizerConfig(enable_nrjn=False))
    db.create_table("A", [("c1", "float"), ("c2", "int")], rows=[
        [float(rng.uniform(0, 1)), int(rng.integers(0, domain))]
        for _ in range(rows)
    ])
    db.create_table("B", [("c1", "int"), ("c2", "float")], rows=[
        [int(rng.integers(0, domain)), float(rng.uniform(0, 1))]
        for _ in range(rows)
    ])
    db.analyze()
    return db


class TestQueueClassing:
    def test_cost_threshold_splits_interactive_from_batch(self):
        db = make_db()
        # The k=5 plan costs ~102, the k=40 plan ~282: a threshold
        # between them classes one per queue.
        controller = AdmissionController(
            db, AdmissionPolicy(interactive_cost=150.0))
        cheap = controller.admit(parse_query(SQL), "t", queue_depth=0)
        big = controller.admit(parse_query(BIG_SQL), "t", queue_depth=0)
        assert cheap.queue_class == INTERACTIVE
        assert big.queue_class == BATCH
        assert cheap.estimated_cost < big.estimated_cost
        assert not cheap.shed and not big.shed

    def test_admission_planning_hits_the_plan_cache(self):
        db = make_db()
        controller = AdmissionController(db)
        controller.admit(parse_query(SQL), "t", queue_depth=0)
        before = db.plan_cache.stats()["hits"]
        controller.admit(parse_query(SQL), "t", queue_depth=0)
        assert db.plan_cache.stats()["hits"] == before + 1

    def test_policy_validation(self):
        with pytest.raises(OverloadError):
            AdmissionPolicy(high_water=0)
        # shed_water defaults to half the high-water mark.
        assert AdmissionPolicy(high_water=10).shed_water == 5


class TestDegradationLadder:
    def test_reduced_k_above_shed_water(self):
        db = make_db()
        controller = AdmissionController(
            db, AdmissionPolicy(high_water=8, shed_water=2, shed_k=5))
        decision = controller.admit(parse_query(BIG_SQL), "t",
                                    queue_depth=4)
        assert decision.shed_action == "reduced_k"
        assert decision.query.k == 5
        assert decision.original_k == 40

    def test_fallback_plan_when_k_cannot_shrink(self):
        db = make_db()
        controller = AdmissionController(
            db, AdmissionPolicy(high_water=8, shed_water=2, shed_k=5))
        # k=5 is already at the shed target -> rung 2 forces the
        # blocking sort-fallback plan instead.
        decision = controller.admit(parse_query(SQL), "t",
                                    queue_depth=4)
        assert decision.shed_action == "fallback_plan"
        assert decision.query.k == 5

    def test_reject_at_high_water(self):
        db = make_db()
        controller = AdmissionController(
            db, AdmissionPolicy(high_water=3))
        with pytest.raises(OverloadError) as info:
            controller.admit(parse_query(SQL), "alice", queue_depth=3)
        assert info.value.queue_depth == 3
        assert info.value.high_water == 3
        assert info.value.tenant == "alice"

    def test_shed_run_returns_reduced_topk_with_shed_path(self):
        db = make_db()
        serial = db.execute(SQL).rows  # k=5: the reduced answer
        policy = AdmissionPolicy(high_water=8, shed_water=0, shed_k=5)

        async def main():
            async with Server(db, admission=policy) as server:
                session = await server.submit(BIG_SQL)
                report = await session.result()
            return report

        report = asyncio.run(main())
        # The shed run served the top-5 prefix of the requested
        # top-40, and recorded the degradation on the recovery path.
        assert report.rows == serial
        assert report.recovery.path == "shed"
        assert db.metrics.counter(
            "server_sheds_total").total() == 1

    def test_forced_fallback_run_matches_serial_answer(self):
        db = make_db()
        serial = db.execute(SQL).rows
        policy = AdmissionPolicy(high_water=8, shed_water=0, shed_k=5)

        async def main():
            async with Server(db, admission=policy) as server:
                session = await server.submit(SQL)
                report = await session.result()
            return session, report

        session, report = asyncio.run(main())
        # Same answer through the blocking sort plan.
        assert report.rows == serial
        assert report.recovery.path == "shed"

    def test_server_rejects_past_high_water(self):
        db = make_db()
        policy = AdmissionPolicy(high_water=1, shed_water=None)

        async def main():
            async with Server(db, admission=policy) as server:
                first = await server.submit(BIG_SQL)
                with pytest.raises(OverloadError):
                    await server.submit(SQL)
                await first.result()
            return first

        first = asyncio.run(main())
        assert first.state == "completed"
        counter = db.metrics.counter("server_queries_total")
        rejected = sum(
            value for labels, value in counter.samples()
            if labels.get("outcome") == "rejected"
        )
        assert rejected == 1


class TestTenantBudgets:
    def test_validation_and_virtual_time(self):
        with pytest.raises(Exception):
            TenantBudget("t", weight=0.0)
        budget = TenantBudget("t", weight=2.0)
        budget.charge(100, 0.5)
        assert budget.pulls == 100
        assert budget.virtual_time == 50.0
        assert not budget.over_cap()

    def test_over_cap_against_aggregate_budget(self):
        budget = TenantBudget("t", cap=ResourceBudget(max_pulls=10))
        budget.charge(9, 0.0)
        assert not budget.over_cap()
        budget.charge(1, 0.0)  # the cap itself counts as exhausted
        assert budget.over_cap()

    def test_server_rejects_tenant_over_cap(self):
        db = make_db()

        async def main():
            async with Server(db) as server:
                server.register_tenant(
                    "metered", cap=ResourceBudget(max_pulls=10))
                first = await server.submit(SQL, tenant="metered")
                await first.result()  # charges ~45 pulls
                with pytest.raises(OverloadError) as info:
                    await server.submit(SQL, tenant="metered")
                # Other tenants are unaffected.
                other = await server.submit(SQL, tenant="free")
                await other.result()
            return first, other, info.value

        first, other, error = asyncio.run(main())
        assert first.state == "completed"
        assert other.state == "completed"
        assert error.tenant == "metered"


class TestPlanCacheThreadSafety:
    def test_concurrent_lookups_keep_counters_consistent(self):
        db = make_db()
        queries = [parse_query(SQL), parse_query(BIG_SQL)]
        workers, per_worker = 8, 50
        errors = []
        barrier = threading.Barrier(workers)

        def hammer(seed):
            rng = make_rng(seed)
            barrier.wait()
            try:
                for _ in range(per_worker):
                    query = queries[int(rng.integers(0, len(queries)))]
                    executor = db._executor_for(query)
                    result = db._cached_optimization(executor, query)
                    assert result.best_plan is not None
                    if int(rng.integers(0, 10)) == 0:
                        db.plan_cache.invalidate()
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        threads = [threading.Thread(target=hammer, args=(i,))
                   for i in range(workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        stats = db.plan_cache.stats()
        # Every lookup was either a hit or a miss -- no updates lost
        # under concurrency.
        assert stats["hits"] + stats["misses"] >= workers * per_worker
        assert stats["size"] <= stats["capacity"]

    def test_concurrent_put_and_invalidate(self):
        cache = PlanCache(capacity=4)
        errors = []

        def writer(base):
            try:
                for i in range(200):
                    cache.put("fp-%d" % ((base + i) % 16), 5, 1,
                              object())
                    cache.get("fp-%d" % (i % 16,), 5, 1)
                    if i % 50 == 0:
                        cache.invalidate()
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        threads = [threading.Thread(target=writer, args=(i,))
                   for i in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert cache.stats()["size"] <= 4


class TestMetricsRegistryThreadSafety:
    def test_concurrent_counter_increments_are_exact(self):
        registry = MetricsRegistry()
        workers, per_worker = 8, 2000

        def hammer(index):
            counter = registry.counter("hits")
            labelled = registry.counter("by_worker")
            gauge = registry.gauge("depth")
            histogram = registry.histogram(
                "latency", buckets=(0.1, 1.0, 10.0))
            for i in range(per_worker):
                counter.inc()
                labelled.inc(worker=str(index % 2))
                gauge.set(float(i))
                histogram.observe(0.5)

        threads = [threading.Thread(target=hammer, args=(i,))
                   for i in range(workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        total = workers * per_worker
        # Exact totals: no increment was lost to a race.
        assert registry.counter("hits").total() == total
        assert registry.counter("by_worker").total() == total
        histogram = registry.histogram(
            "latency", buckets=(0.1, 1.0, 10.0))
        count, observed_sum = histogram.value()
        assert count == total
        assert observed_sum == pytest.approx(0.5 * total)
