"""Unit tests for hash/round-robin table partitioning."""

import pytest

from repro.common.errors import CatalogError
from repro.common.rng import make_rng
from repro.storage.catalog import Catalog
from repro.storage.index import SortedIndex
from repro.storage.partition import Partitioner, stable_hash
from repro.storage.table import Table


def make_catalog(rows=60, key_domain=7, seed=3):
    rng = make_rng(seed)
    catalog = Catalog()
    table = Table.from_columns(
        "T", [("key", "int"), ("score", "float")]
    )
    for _ in range(rows):
        table.insert([int(rng.integers(0, key_domain)),
                      float(rng.uniform(0, 1))])
    table.create_index(SortedIndex("T_idx", "T.score"))
    catalog.register(table)
    return catalog


def shard_rows(catalog, partitioning):
    return [list(catalog.table(name).rows())
            for name in partitioning.shard_names]


class TestHashPartitioning:
    def test_shards_are_a_disjoint_union(self):
        catalog = make_catalog()
        base_rows = list(catalog.table("T").rows())
        partitioning = Partitioner(catalog).partition(
            "T", 4, column="T.key",
        )
        shards = shard_rows(catalog, partitioning)
        assert sum(len(rows) for rows in shards) == len(base_rows)
        scattered = [row for rows in shards for row in rows]
        assert sorted(scattered, key=repr) == sorted(base_rows, key=repr)

    def test_hash_routing_co_locates_keys(self):
        catalog = make_catalog()
        partitioning = Partitioner(catalog).partition(
            "T", 4, column="T.key",
        )
        for index, rows in enumerate(shard_rows(catalog, partitioning)):
            for row in rows:
                assert stable_hash(row["T.key"]) % 4 == index

    def test_shards_keep_base_name_schema_and_indexes(self):
        catalog = make_catalog()
        partitioning = Partitioner(catalog).partition(
            "T", 2, column="T.key",
        )
        base = catalog.table("T")
        for name in partitioning.shard_names:
            shard = catalog.table(name)
            assert shard.name == "T"
            assert shard.schema == base.schema
            assert shard.get_index("T_idx").key_description == "T.score"

    def test_unknown_column_rejected(self):
        catalog = make_catalog()
        with pytest.raises(CatalogError, match="no column"):
            Partitioner(catalog).partition("T", 2, column="T.nope")


class TestRoundRobin:
    def test_round_robin_balances(self):
        catalog = make_catalog(rows=61)
        partitioning = Partitioner(catalog).partition("T", 4)
        assert partitioning.strategy == "round_robin"
        sizes = [len(rows)
                 for rows in shard_rows(catalog, partitioning)]
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == 61


class TestLifecycle:
    def test_partition_is_idempotent(self):
        catalog = make_catalog()
        partitioner = Partitioner(catalog)
        first = partitioner.partition("T", 3, column="T.key")
        version = catalog.version
        again = partitioner.partition("T", 3, column="T.key")
        assert again is first
        assert catalog.version == version

    def test_repartition_replaces_shards(self):
        catalog = make_catalog()
        partitioner = Partitioner(catalog)
        old = partitioner.partition("T", 2, column="T.key")
        old_shard = catalog.table(old.shard_names[0])
        new = partitioner.partition("T", 3, column="T.key")
        assert new.shard_count == 3
        for name in new.shard_names:
            assert name in catalog
        # Alias names are reused, but the tables behind them are fresh
        # and the 2-shard layout is fully replaced by the 3-shard one.
        assert catalog.table(new.shard_names[0]) is not old_shard
        assert catalog.partitioning("T", "T.key") is new

    def test_insert_into_base_staleness(self):
        catalog = make_catalog()
        Partitioner(catalog).partition("T", 2, column="T.key")
        assert catalog.partitioning("T", "T.key") is not None
        catalog.table("T").insert([1, 0.5])
        assert catalog.partitioning("T", "T.key") is None
        assert catalog.partitioning(
            "T", "T.key", allow_stale=True,
        ) is not None

    def test_partitioning_moves_catalog_version(self):
        catalog = make_catalog()
        before = catalog.version
        Partitioner(catalog).partition("T", 2, column="T.key")
        assert catalog.version > before

    def test_bad_shard_count_and_strategy(self):
        catalog = make_catalog()
        partitioner = Partitioner(catalog)
        with pytest.raises(CatalogError, match="shard count"):
            partitioner.partition("T", 0, column="T.key")
        with pytest.raises(CatalogError, match="unknown strategy"):
            partitioner.partition("T", 2, strategy="range")
        with pytest.raises(CatalogError, match="needs a column"):
            partitioner.partition("T", 2, strategy="hash")


class TestStableHash:
    def test_process_stable_values(self):
        assert stable_hash(7) == 7
        assert stable_hash(True) == 1
        assert stable_hash("abc") == stable_hash("abc")
        assert stable_hash((1, "a")) == stable_hash((1, "a"))
        assert stable_hash(1.5) == stable_hash(1.5)
