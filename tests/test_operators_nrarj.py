"""Unit tests for the NRA-RJ key-join rank-join operator."""

import pytest

from repro.common.errors import ExecutionError
from repro.common.rng import make_rng
from repro.operators.hrjn import HRJN
from repro.operators.nrarj import NRARJ
from repro.operators.scan import IndexScan, TableScan
from repro.operators.topk import Limit
from repro.storage.index import SortedIndex
from repro.storage.table import Table


def key_join_pair(n=300, seed=0):
    """Two relations ranking the same n objects (unique keys)."""
    rng = make_rng(seed)
    tables = []
    for name in ("L", "R"):
        table = Table.from_columns(
            name, [("key", "int"), ("score", "float")],
        )
        scores = rng.uniform(0, 1, n)
        for i in range(n):
            table.insert([i, float(scores[i])])
        table.create_index(SortedIndex(
            "%s_idx" % name, "%s.score" % name,
        ))
        tables.append(table)
    return tables


def nrarj_over(left, right, **kwargs):
    return NRARJ(
        IndexScan(left, left.get_index("L_idx")),
        IndexScan(right, right.get_index("R_idx")),
        "L.key", "R.key", "L.score", "R.score", name="NJ", **kwargs,
    )


def truth(left, right, k):
    left_scores = {r["L.key"]: r["L.score"] for r in left.scan()}
    combined = sorted(
        (left_scores[r["R.key"]] + r["R.score"] for r in right.scan()),
        reverse=True,
    )
    return [round(v, 9) for v in combined[:k]]


class TestCorrectness:
    def test_top_k_matches_truth(self):
        left, right = key_join_pair()
        rows = list(Limit(nrarj_over(left, right), 10))
        assert [round(r["_score_NJ"], 9) for r in rows] == truth(
            left, right, 10,
        )

    def test_scores_non_increasing(self):
        left, right = key_join_pair(seed=2)
        scores = [r["_score_NJ"] for r in Limit(nrarj_over(left, right), 40)]
        assert all(a >= b - 1e-12 for a, b in zip(scores, scores[1:]))

    def test_full_drain_yields_all_objects(self):
        left, right = key_join_pair(n=50, seed=3)
        assert len(list(nrarj_over(left, right))) == 50

    def test_agrees_with_hrjn(self):
        left, right = key_join_pair(seed=4)
        nj_scores = [
            round(r["_score_NJ"], 9)
            for r in Limit(nrarj_over(left, right), 15)
        ]
        hr = HRJN(
            IndexScan(left, left.get_index("L_idx")),
            IndexScan(right, right.get_index("R_idx")),
            "L.key", "R.key", "L.score", "R.score", name="H",
        )
        hr_scores = [round(r["_score_H"], 9) for r in Limit(hr, 15)]
        assert nj_scores == hr_scores


class TestBehaviour:
    def test_early_out(self):
        left, right = key_join_pair(n=2000, seed=5)
        rank_join = nrarj_over(left, right)
        list(Limit(rank_join, 5))
        assert max(rank_join.depths) < 2000

    def test_duplicate_key_rejected(self):
        table = Table.from_columns("L", [("key", "int"), ("score", "float")])
        table.insert([1, 0.9])
        table.insert([1, 0.5])
        table.create_index(SortedIndex("L_idx", "L.score"))
        _left, right = key_join_pair(n=5, seed=6)
        rank_join = NRARJ(
            IndexScan(table, table.get_index("L_idx")),
            IndexScan(right, right.get_index("R_idx")),
            "L.key", "R.key", "L.score", "R.score",
        )
        with pytest.raises(ExecutionError, match="unique join keys"):
            list(rank_join)

    def test_unsorted_input_detected(self):
        table = Table.from_columns("L", [("key", "int"), ("score", "float")])
        table.insert([0, 0.1])
        table.insert([1, 0.9])
        _left, right = key_join_pair(n=5, seed=7)
        rank_join = NRARJ(
            TableScan(table),
            IndexScan(right, right.get_index("R_idx")),
            "L.key", "R.key", "L.score", "R.score",
        )
        with pytest.raises(ExecutionError, match="not sorted"):
            list(rank_join)

    def test_partial_object_overlap(self):
        """Keys missing from one input never join -- and must not block
        emission forever."""
        rng = make_rng(8)
        left = Table.from_columns("L", [("key", "int"), ("score", "float")])
        right = Table.from_columns("R", [("key", "int"), ("score", "float")])
        for i in range(20):
            left.insert([i, float(rng.uniform(0, 1))])
        for i in range(10, 30):
            right.insert([i, float(rng.uniform(0, 1))])
        left.create_index(SortedIndex("L_idx", "L.score"))
        right.create_index(SortedIndex("R_idx", "R.score"))
        rank_join = NRARJ(
            IndexScan(left, left.get_index("L_idx")),
            IndexScan(right, right.get_index("R_idx")),
            "L.key", "R.key", "L.score", "R.score", name="NJ",
        )
        rows = list(rank_join)
        assert len(rows) == 10  # Only the overlapping keys join.
        assert {r["L.key"] for r in rows} == set(range(10, 20))
