"""Chaos: SIGKILL a guarded query at every checkpoint boundary.

A child process runs the Figure-6 query with a one-row checkpoint
cadence and a durable state directory, and SIGKILLs itself immediately
after its N-th completed snapshot write -- the closest deterministic
model of "the machine died right after fsync returned".  The parent
sweeps N upward until the child survives, and after every kill proves
the recovery promise end to end: a fresh ``Database`` over the same
directory resumes and produces the exact rows of an uninterrupted run,
re-pulling strictly less than a from-scratch execution.

These tests spawn real processes and are marked ``chaos``; CI runs
them in a dedicated job (``pytest -m chaos``).
"""

import os
import signal
import subprocess
import sys

import pytest

from repro.common.rng import make_rng
from repro.executor.database import Database
from repro.optimizer.enumerator import OptimizerConfig
from repro.robustness.durability import CheckpointStore

pytestmark = [pytest.mark.chaos, pytest.mark.timeout(300)]

SRC = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "src"))

SQL = """
WITH Ranked AS (
  SELECT A.c1 AS x, B.c2 AS y,
         rank() OVER (ORDER BY (0.3*A.c1 + 0.7*B.c2)) AS rank
  FROM A, B WHERE A.c2 = B.c1)
SELECT x, y, rank FROM Ranked WHERE rank <= 5
"""


def make_db(rows=400, seed=3, domain=15):
    # HRJN only: NRJN materialises its inner at open(), collapsing the
    # incremental checkpoint trail this chaos model relies on.
    rng = make_rng(seed)
    db = Database(config=OptimizerConfig(enable_nrjn=False))
    db.create_table("A", [("c1", "float"), ("c2", "int")], rows=[
        [float(rng.uniform(0, 1)), int(rng.integers(0, domain))]
        for _ in range(rows)
    ])
    db.create_table("B", [("c1", "int"), ("c2", "float")], rows=[
        [int(rng.integers(0, domain)), float(rng.uniform(0, 1))]
        for _ in range(rows)
    ])
    db.analyze()
    return db


#: Run in a child interpreter: same deterministic database, one-row
#: checkpoint cadence, SIGKILL right after the N-th durable write.
_CHILD = '''
import os
import signal
import sys

sys.path.insert(0, %(src)r)
from tests.test_chaos_sigkill_durability import SQL, make_db
from repro.robustness import durability

kill_after = int(sys.argv[1])
state_dir = sys.argv[2]

_real_write = durability.CheckpointStore._write
_writes = [0]


def _killing_write(self, query_id, payload):
    path = _real_write(self, query_id, payload)
    _writes[0] += 1
    if _writes[0] >= kill_after:
        os.kill(os.getpid(), signal.SIGKILL)
    return path


durability.CheckpointStore._write = _killing_write
report = make_db().execute_guarded(SQL, checkpoint=1,
                                   state_dir=state_dir)
print(len(report.rows))
'''


#: Variant: die between the tmp-file write and the publishing rename.
_CHILD_MIDWRITE = '''
import os
import signal
import sys

sys.path.insert(0, %(src)r)
from tests.test_chaos_sigkill_durability import SQL, make_db
from repro.robustness import durability

state_dir = sys.argv[1]
_real_replace = os.replace


def _killing_replace(src, dst):
    if dst.endswith(".ckpt"):
        os.kill(os.getpid(), signal.SIGKILL)
    return _real_replace(src, dst)


durability.os.replace = _killing_replace
make_db().execute_guarded(SQL, checkpoint=1, state_dir=state_dir)
'''


def run_child(code, *argv):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [SRC, os.path.dirname(SRC)]
        + [p for p in (env.get("PYTHONPATH"),) if p])
    return subprocess.run(
        [sys.executable, "-c", code % {"src": SRC}, *argv],
        env=env, capture_output=True, text=True, timeout=120)


def test_sigkill_sweep_recovers_at_every_checkpoint_boundary(tmp_path):
    clean = make_db().execute_guarded(SQL)
    kills = 0
    for kill_after in range(1, 40):
        state_dir = str(tmp_path / ("kill-%02d" % kill_after))
        proc = run_child(_CHILD, str(kill_after), state_dir)
        if proc.returncode == 0:
            # The query finished before the N-th write: the sweep has
            # covered every checkpoint boundary the run ever produces.
            assert proc.stdout.strip() == str(len(clean.rows))
            break
        assert proc.returncode == -signal.SIGKILL, proc.stderr
        kills += 1
        store = CheckpointStore(state_dir)
        (query_id,) = store.query_ids()
        db = make_db()
        resumed = db.resume(state_dir, state_dir=state_dir)
        assert resumed.rows == clean.rows
        assert resumed.recovery.path == "resumed"
        # Continuation, not a rerun: the resumed drain pulled strictly
        # less than the uninterrupted execution.
        assert (resumed.recovery.stats["pulled_total"]
                < clean.recovery.stats["pulled_total"])
        # Completion retires the durable state.
        assert store.query_ids() == []
        recoveries = db.metrics.counter("durability_recoveries_total")
        assert recoveries.value(outcome="resumed") == 1
    else:
        pytest.fail("query never completed within the sweep range")
    assert kills >= 2, "sweep must cover multiple checkpoint boundaries"


def test_sigkill_mid_write_leaves_no_visible_snapshot(tmp_path):
    """A kill *between* the tmp write and the publishing rename leaves
    no visible snapshot: recovery sees only older complete snapshots
    (here, none) -- never a torn file."""
    state_dir = str(tmp_path / "torn")
    proc = run_child(_CHILD_MIDWRITE, state_dir)
    assert proc.returncode == -signal.SIGKILL, proc.stderr
    store = CheckpointStore(state_dir)
    assert store.query_ids() == []
    names = os.listdir(state_dir)
    assert [name for name in names if name.endswith(".ckpt")] == []
    # The torn write is still on disk as the ignored tmp file -- proof
    # the kill landed mid-write, not before it.
    assert any(name.endswith(".ckpt.tmp") for name in names)
