"""Golden-ish assertions on the textual reports.

Locks down the shape of ``explain()``, ``analyze()``, and the
estimate-accuracy summary for a 3-way HRJN plan, plus the recovery
section that guarded executions append.  These tests pin the lines a
reader depends on (section headers, column labels, operator coverage)
without freezing volatile numbers.
"""

import re

import pytest

from repro.common.rng import make_rng
from repro.executor.database import Database
from repro.optimizer.enumerator import OptimizerConfig
from repro.optimizer.plans import RankJoinPlan
from repro.robustness.recovery import RecoveryPolicy

THREE_WAY_SQL = """
WITH R AS (
  SELECT A.c1 AS x, rank() OVER (ORDER BY (A.c1 + B.c1 + C.c1)) AS rank
  FROM A, B, C WHERE A.c2 = B.c2 AND B.c2 = C.c2)
SELECT x, rank FROM R WHERE rank <= 5
"""

TWO_WAY_SQL = """
WITH Ranked AS (
  SELECT A.c1 AS x, B.c2 AS y,
         rank() OVER (ORDER BY (0.3*A.c1 + 0.7*B.c2)) AS rank
  FROM A, B WHERE A.c2 = B.c1)
SELECT x, y, rank FROM Ranked WHERE rank <= 5
"""


def make_three_way_db(rows=400, domain=15, seed=7):
    rng = make_rng(seed)
    db = Database(config=OptimizerConfig(enable_nrjn=False))
    for name in ("A", "B", "C"):
        db.create_table(
            name, [("c1", "float"), ("c2", "int")],
            rows=[[float(rng.uniform(0, 1)), int(rng.integers(0, domain))]
                  for _ in range(rows)],
        )
    db.analyze()
    return db


def make_two_way_db(rows=400, seed=3, domain=15):
    rng = make_rng(seed)
    db = Database()
    db.create_table("A", [("c1", "float"), ("c2", "int")], rows=[
        [float(rng.uniform(0, 1)), int(rng.integers(0, domain))]
        for _ in range(rows)
    ])
    db.create_table("B", [("c1", "int"), ("c2", "float")], rows=[
        [int(rng.integers(0, domain)), float(rng.uniform(0, 1))]
        for _ in range(rows)
    ])
    db.analyze()
    return db


@pytest.fixture(scope="module")
def three_way_report():
    return make_three_way_db().execute(THREE_WAY_SQL)


@pytest.fixture(scope="module")
def traced_three_way_report():
    return make_three_way_db().execute(THREE_WAY_SQL, trace=True)


class TestExplainText:
    def test_sections_in_order(self, three_way_report):
        text = three_way_report.explain()
        assert text.index("best plan (k=5):") < text.index("execution:")

    def test_execution_lines_cover_every_operator(self, three_way_report):
        text = three_way_report.explain()
        execution = text[text.index("execution:"):]
        for snap in three_way_report.operators:
            assert snap.description in execution
        assert execution.count("rows_out=") == len(
            three_way_report.operators)
        assert "pulled=" in execution
        assert "buffer=" in execution

    def test_three_way_plan_is_hrjn_over_hrjn(self, three_way_report):
        assert isinstance(three_way_report.best_plan, RankJoinPlan)
        text = three_way_report.explain()
        assert text.count("HRJN") >= 2  # Two rank joins in the tree.

    def test_untraced_run_has_no_time_column(self, three_way_report):
        assert "time=" not in three_way_report.explain()

    def test_traced_run_adds_time_column(self, traced_three_way_report):
        text = traced_three_way_report.explain()
        execution = text[text.index("execution:"):]
        timed_lines = [line for line in execution.splitlines()
                       if "rows_out=" in line]
        assert timed_lines
        for line in timed_lines:
            assert re.search(r"time=\d+\.\d{3}ms$", line)


class TestAnalyzeText:
    def test_header_and_depth_columns(self, three_way_report):
        text = three_way_report.analyze()
        assert text.startswith("explain analyze:")
        assert "est depth=" in text
        assert "actual depth=" in text
        assert "pulled=" in text

    def test_rank_join_lines_one_per_join(self, three_way_report):
        text = three_way_report.analyze()
        body = text[:text.index("estimate accuracy:")]
        depth_lines = [line for line in body.splitlines()
                       if "est depth=" in line and "HRJN" in line]
        assert len(depth_lines) == 2  # 3-way plan: two rank joins.
        for line in depth_lines:
            assert re.search(
                r"k=\d+ est depth=\d+ \(\d+, \d+\) "
                r"actual depth=\d+ pulled=\[\d+, \d+\]", line)

    def test_non_join_operators_report_cardinality(self, three_way_report):
        text = three_way_report.analyze()
        assert "est rows<=" in text or "actual rows=" in text

    def test_accuracy_summary_appended(self, three_way_report):
        text = three_way_report.analyze()
        assert "\n\nestimate accuracy:" in text
        # The summary is the final section.
        assert text.index("estimate accuracy:") > text.index(
            "explain analyze:")

    def test_traced_analyze_has_time_columns(self, traced_three_way_report):
        text = traced_three_way_report.analyze()
        body = text[:text.index("estimate accuracy:")]
        operator_lines = [
            line for line in body.splitlines()
            if "est depth=" in line or "est rows<=" in line
            or "actual rows=" in line
        ]
        assert operator_lines
        for line in operator_lines:
            assert "time=" in line


class TestAccuracySummaryText:
    def test_rank_join_rows_carry_est_and_actual(self, three_way_report):
        summary = three_way_report.accuracy_summary()
        lines = summary.splitlines()
        assert lines[0] == "estimate accuracy:"
        join_lines = [line for line in lines if "est depth=(" in line]
        assert len(join_lines) == 2
        for line in join_lines:
            assert re.search(
                r"k=\d+\s+est depth=\(\d+, \d+\) actual=\(\d+, \d+\) "
                r"err=\d+% est buffer<=\d+ actual=\d+", line)

    def test_input_rows_show_required_depth(self, three_way_report):
        summary = three_way_report.accuracy_summary()
        input_lines = [line for line in summary.splitlines()
                       if "required depth=" in line]
        assert len(input_lines) == 3  # Three ranked base inputs.
        for line in input_lines:
            assert re.search(r"required depth=\d+ actual=\d+ err=\d+%",
                             line)

    def test_depths_quoted_match_propagate(self, three_way_report):
        """The printed estimates are the propagate_depths numbers."""
        root_plan = three_way_report.best_plan
        summary = three_way_report.accuracy_summary()
        printed = set(re.findall(r"est depth=\((\d+), (\d+)\)", summary))
        expected = {
            ("%.0f" % (estimate.d_left,), "%.0f" % (estimate.d_right,))
            for _plan, _required, estimate in root_plan.propagate_depths(5)
            if estimate is not None
        }
        assert printed == expected


class TestRecoverySection:
    """The PR 1 recovery report, as rendered inside explain()."""

    def _wrong_selectivity_db(self, factor=4.0):
        db = make_two_way_db()
        real = db.catalog.join_selectivity("A", "A.c2", "B", "B.c1")
        db.set_join_selectivity("A.c2", "B.c1", min(1.0, real * factor))
        return db

    def test_direct_path_line(self):
        report = make_two_way_db().execute_guarded(TWO_WAY_SQL)
        text = report.explain()
        assert "\n\nrecovery: path=direct" in text

    def test_recovery_section_lists_events(self):
        db = self._wrong_selectivity_db()
        report = db.execute_guarded(
            TWO_WAY_SQL,
            policy=RecoveryPolicy(overrun_factor=1.1, min_headroom=4),
        )
        text = report.explain()
        match = re.search(r"recovery: path=(\w+)", text)
        assert match and match.group(1) in ("reestimated", "fallback")
        # Each recorded event renders below the path line.
        recovery_section = text[text.index("recovery: path="):]
        for event in report.recovery.events:
            assert event.kind in recovery_section

    def test_guarded_traced_run_has_recovery_and_time(self):
        db = self._wrong_selectivity_db()
        report = db.execute_guarded(
            TWO_WAY_SQL,
            policy=RecoveryPolicy(overrun_factor=1.1, min_headroom=4),
            trace=True,
        )
        text = report.explain()
        assert "recovery: path=" in text
        assert "time=" in text
        # Recovery decisions also land in the telemetry event log.
        recovery_events = report.telemetry.events.events("recovery")
        assert len(recovery_events) == len(report.recovery.events)
        for event in recovery_events:
            assert event.attributes["action"] in (
                "reestimate", "fallback")
