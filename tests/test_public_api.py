"""The public API surface: everything in ``repro.__all__`` must exist
and the documented quickstart flow must work verbatim."""

import importlib

import repro


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__

    def test_subpackages_importable(self):
        for module in (
                "repro.common", "repro.storage", "repro.data",
                "repro.ranking", "repro.operators", "repro.estimation",
                "repro.cost", "repro.optimizer", "repro.sql",
                "repro.executor", "repro.experiments"):
            importlib.import_module(module)

    def test_public_items_documented(self):
        """Every exported callable/class carries a docstring."""
        for name in repro.__all__:
            item = getattr(repro, name)
            assert item.__doc__, "%s lacks a docstring" % (name,)


class TestQuickstartFlow:
    def test_readme_snippet(self):
        from repro import Database
        from repro.common.rng import make_rng

        rng = make_rng(0)
        db = Database()
        db.create_table("A", [("c1", "float"), ("c2", "int")], rows=[
            [float(rng.uniform(0, 1)), int(rng.integers(0, 40))]
            for _ in range(300)])
        db.create_table("B", [("c1", "int"), ("c2", "float")], rows=[
            [int(rng.integers(0, 40)), float(rng.uniform(0, 1))]
            for _ in range(300)])
        db.analyze()

        report = db.execute("""
            WITH Ranked AS (
                SELECT A.c1 AS x, B.c2 AS y,
                       rank() OVER (ORDER BY (0.3*A.c1 + 0.7*B.c2)) AS rank
                FROM A, B WHERE A.c2 = B.c1)
            SELECT x, y, rank FROM Ranked WHERE rank <= 5""")
        assert len(report.rows) == 5
        assert "best plan" in report.explain()
