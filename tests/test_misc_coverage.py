"""Breadth tests for small surfaces: reprs, describe strings, and edge
paths not covered elsewhere."""

import pytest

from repro.common.errors import ParseError, ReproError
from repro.common.rng import make_rng
from repro.common.scoring import SumScore
from repro.common.types import Row
from repro.data.video import make_video_workload
from repro.estimation.depths import DepthEstimate
from repro.estimation.distributions import sum_uniform_cdf
from repro.estimation.empirical import empirical_depths_from_catalog
from repro.experiments.report import format_table
from repro.operators.base import OperatorStats, ScoreSpec
from repro.optimizer.memo import Memo
from repro.optimizer.properties import OrderProperty
from repro.sql.unparse import to_sql
from repro.storage.catalog import Catalog


class TestReprsAndDescribe:
    def test_error_hierarchy(self):
        assert issubclass(ParseError, ReproError)
        error = ParseError("boom", position=7)
        assert "position 7" in str(error)
        assert error.position == 7

    def test_operator_stats_repr(self):
        stats = OperatorStats(2)
        stats.note_buffer(3)
        assert "max_buffer=3" in repr(stats)

    def test_score_spec_repr(self):
        assert "A.c1" in repr(ScoreSpec.column("A.c1"))

    def test_row_repr_sorted(self):
        assert repr(Row({"b": 2, "a": 1})) == "Row(a=1, b=2)"

    def test_sum_score_repr(self):
        assert repr(SumScore()) == "SumScore()"

    def test_depth_estimate_repr(self):
        estimate = DepthEstimate(1.0, 2.0, 3.0, 4.0, clamped=True)
        assert "clamped" in repr(estimate)

    def test_video_workload_repr(self):
        workload = make_video_workload(10, features=("F",), seed=1)
        assert "n=10" in repr(workload)

    def test_order_property_reprs(self):
        assert "DC" in repr(OrderProperty.none())
        assert "A.c1" in repr(OrderProperty.on("A.c1"))


class TestMemoDescribe:
    def test_describe_lists_entries(self):
        from repro.cost.model import CostModel
        from repro.optimizer.plans import AccessPlan

        memo = Memo(k_min=2)
        memo.add(AccessPlan(CostModel(), "A", 100))
        text = memo.describe()
        assert text.startswith("A:")
        assert "cost(k_min)" in text
        assert "Memo(1 entries" in repr(memo)


class TestDistributionEdges:
    def test_cdf_clamped_to_one(self):
        # Outside the exact top slab the tail expression is clamped.
        assert sum_uniform_cdf(3, 1.0, 0.1) <= 1.0

    def test_cdf_monotone_sample(self):
        values = [sum_uniform_cdf(2, 1.0, t) for t in
                  (0.0, 0.5, 1.0, 1.5, 2.0)]
        assert values == sorted(values, reverse=True)


class TestFormatTable:
    def test_handles_mixed_types(self):
        text = format_table(["a", "b"], [["x", 1], [2.5, "y"]])
        assert "2.5" in text
        assert "|" in text

    def test_no_title(self):
        text = format_table(["h"], [[1]])
        assert text.splitlines()[0].startswith("h")


class TestUnparseEdges:
    def test_default_select_from_ranking(self):
        from repro.optimizer.expressions import ScoreExpression
        from repro.optimizer.query import JoinPredicate, RankQuery

        query = RankQuery(
            tables="AB", predicates=[JoinPredicate("A.c2", "B.c2")],
            ranking=ScoreExpression({"A.c1": 1.0, "B.c1": 1.0}), k=2,
        )
        sql = to_sql(query)
        assert "A.c1 AS col0" in sql

    def test_select_star_plain(self):
        from repro.optimizer.query import RankQuery

        assert to_sql(RankQuery(tables="A")) == "SELECT * FROM A"


class TestEmpiricalFromCatalog:
    def test_end_to_end(self):
        from repro.data.generators import generate_ranked_table

        catalog = Catalog()
        for name, seed in (("L", 1), ("R", 2)):
            catalog.register(generate_ranked_table(
                name, 300, selectivity=0.05, seed=seed,
            ))
        catalog.analyze()
        catalog.set_join_selectivity("L.key", "R.key", 0.05)
        estimate = empirical_depths_from_catalog(
            catalog, "L", "L_score_idx", "R", "R_score_idx",
            "L.key", "R.key", 10,
        )
        assert 1 <= estimate.d_left <= 300

    def test_prefix_sampling(self):
        from repro.data.generators import generate_ranked_table

        catalog = Catalog()
        for name, seed in (("L", 3), ("R", 4)):
            catalog.register(generate_ranked_table(
                name, 300, selectivity=0.05, seed=seed,
            ))
        catalog.analyze()
        catalog.set_join_selectivity("L.key", "R.key", 0.05)
        full = empirical_depths_from_catalog(
            catalog, "L", "L_score_idx", "R", "R_score_idx",
            "L.key", "R.key", 10,
        )
        sampled = empirical_depths_from_catalog(
            catalog, "L", "L_score_idx", "R", "R_score_idx",
            "L.key", "R.key", 10, prefix=60,
        )
        assert sampled.d_left == pytest.approx(full.d_left, rel=0.5)


class TestRngHelper:
    def test_generator_passthrough(self):
        rng = make_rng(1)
        assert make_rng(rng) is rng

    def test_seed_determinism(self):
        assert make_rng(5).integers(0, 100) == make_rng(5).integers(0, 100)
