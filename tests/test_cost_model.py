"""Unit tests for the cost model primitives."""

import pytest

from repro.common.errors import EstimationError
from repro.cost.model import CostModel


class TestPrimitives:
    def test_pages(self):
        model = CostModel(tuples_per_page=100)
        assert model.pages(0) == 0
        assert model.pages(1) == 1
        assert model.pages(100) == 1
        assert model.pages(101) == 2

    def test_cpu_weight(self):
        model = CostModel(cpu_tuple_weight=0.01)
        assert model.cpu(100) == pytest.approx(1.0)
        assert model.cpu(-5) == 0.0

    def test_invalid_parameters(self):
        with pytest.raises(EstimationError):
            CostModel(tuples_per_page=0)
        with pytest.raises(EstimationError):
            CostModel(buffer_pages=2)


class TestAccessPaths:
    def test_scan_cost_scales(self):
        model = CostModel()
        assert model.table_scan_cost(1000) < model.table_scan_cost(10000)

    def test_unclustered_index_random_io(self):
        model = CostModel(random_io_weight=4.0, clustered_index=False)
        cost = model.index_sorted_access_cost(10)
        assert cost >= 10 * 4.0  # One random page per tuple.

    def test_clustered_index_sequential(self):
        model = CostModel(clustered_index=True, tuples_per_page=100)
        clustered = model.index_sorted_access_cost(1000)
        unclustered = CostModel(
            clustered_index=False,
        ).index_sorted_access_cost(1000)
        assert clustered < unclustered

    def test_zero_depth_free(self):
        assert CostModel().index_sorted_access_cost(0) == 0.0

    def test_probe_cost(self):
        model = CostModel(index_probe_pages=2)
        assert model.index_probe_cost(0) >= 2


class TestSort:
    def test_in_memory_sort_cpu_only(self):
        model = CostModel(tuples_per_page=1000)
        assert model.external_sort_cost(500) == model.cpu(500)

    def test_single_pass(self):
        model = CostModel(tuples_per_page=100, buffer_pages=64)
        # 10 pages fit in 64 buffers: one read+write pass.
        assert model.external_sort_cost(1000) == pytest.approx(
            2 * 10 + model.cpu(1000),
        )

    def test_multi_pass_growth(self):
        model = CostModel(tuples_per_page=10, buffer_pages=4)
        small = model.external_sort_cost(1000)
        large = model.external_sort_cost(100000)
        assert large > small
        # 100000 tuples = 10000 pages, runs = 2500, fan-in 3:
        # passes = 1 + ceil(log3(2500)) = 9.
        assert large == pytest.approx(2 * 10000 * 9 + model.cpu(100000))


class TestJoins:
    def test_hash_join_in_memory(self):
        model = CostModel(tuples_per_page=100, buffer_pages=64)
        cost = model.hash_join_cost(1000, 1000)
        assert cost == pytest.approx(model.cpu(2000))

    def test_hash_join_grace_spill(self):
        model = CostModel(tuples_per_page=10, buffer_pages=4)
        cost = model.hash_join_cost(10000, 10000)
        assert cost >= 2 * (1000 + 1000)

    def test_inl_scales_with_outer(self):
        model = CostModel()
        assert (model.index_nl_join_cost(100, 10000, 0.01)
                < model.index_nl_join_cost(1000, 10000, 0.01))

    def test_nl_quadratic_pages(self):
        model = CostModel(tuples_per_page=100)
        cost = model.nl_join_cost(1000, 1000)
        assert cost >= 10 * 10

    def test_sort_merge_skips_sorted_inputs(self):
        model = CostModel()
        both_sorted = model.sort_merge_join_cost(
            10000, 10000, left_sorted=True, right_sorted=True,
        )
        unsorted = model.sort_merge_join_cost(10000, 10000)
        assert both_sorted < unsorted


class TestRankJoinCosts:
    def test_hrjn_cpu_only(self):
        model = CostModel()
        cost = model.hrjn_cost(100, 100, 0.01)
        assert cost > 0
        assert cost < model.table_scan_cost(100000)

    def test_hrjn_monotone_in_depth(self):
        model = CostModel()
        assert model.hrjn_cost(10, 10, 0.1) < model.hrjn_cost(
            1000, 1000, 0.1,
        )

    def test_nrjn_charges_inner_scan(self):
        model = CostModel()
        cost = model.nrjn_cost(10, 10000, 0.01)
        assert cost >= model.table_scan_cost(10000)
