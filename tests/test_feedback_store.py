"""The adaptive feedback store: EWMA learning, overlay, persistence.

Unit-level contract of ``repro.feedback.store`` plus the integration
seams it plugs into: the catalog's learned-statistics precedence, the
epoch-scoped plan-cache invalidation, and the convergence property --
repeated executions of a deliberately mis-estimated query shrink the
smoothed depth-estimate error monotonically.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import CatalogError
from repro.common.rng import make_rng
from repro.executor.database import Database
from repro.feedback import FeedbackPolicy, FeedbackStore
from repro.feedback.store import fingerprint_key, join_key
from repro.optimizer.enumerator import OptimizerConfig
from repro.optimizer.query import JoinPredicate

SQL = """
WITH Ranked AS (
  SELECT A.c1 AS x, B.c2 AS y,
         rank() OVER (ORDER BY (0.3*A.c1 + 0.7*B.c2)) AS rank
  FROM A, B WHERE A.c2 = B.c1)
SELECT x, y, rank FROM Ranked WHERE rank <= 5
"""

AB = JoinPredicate("A.c2", "B.c1")


def make_db(rows=300, seed=3, domain=15, feedback=False, hrjn_only=True):
    # NRJN snapshots carry no selectivity signal (the inner
    # materialises in full), so learning tests pin HRJN plans.
    config = OptimizerConfig(enable_nrjn=False) if hrjn_only else None
    rng = make_rng(seed)
    db = Database(config=config, feedback=feedback)
    db.create_table("A", [("c1", "float"), ("c2", "int")], rows=[
        [float(rng.uniform(0, 1)), int(rng.integers(0, domain))]
        for _ in range(rows)
    ])
    db.create_table("B", [("c1", "int"), ("c2", "float")], rows=[
        [int(rng.integers(0, domain)), float(rng.uniform(0, 1))]
        for _ in range(rows)
    ])
    db.analyze()
    return db


def mis_estimate(db, factor):
    """Pin the A-B selectivity estimate ``factor``x off the truth."""
    real = db.catalog.join_selectivity("A", "A.c2", "B", "B.c1")
    db.set_join_selectivity("A.c2", "B.c1", min(1.0, real * factor))
    return real


class TestPolicyValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(CatalogError):
            FeedbackPolicy(alpha=0.0)
        with pytest.raises(CatalogError):
            FeedbackPolicy(alpha=1.5)
        with pytest.raises(CatalogError):
            FeedbackPolicy(min_observations=0)
        with pytest.raises(CatalogError):
            FeedbackPolicy(min_pairs=0)
        with pytest.raises(CatalogError):
            FeedbackPolicy(apply_threshold=-0.1)

    def test_defaults_are_valid(self):
        policy = FeedbackPolicy()
        assert 0.0 < policy.alpha <= 1.0
        assert policy.min_observations >= 1


class TestKeys:
    def test_join_key_is_order_insensitive(self):
        assert join_key(AB) == join_key(JoinPredicate("B.c1", "A.c2"))
        assert join_key(("A.c2", "B.c1")) == join_key(AB)

    def test_fingerprint_key_deterministic(self):
        fp = (("A", "B"), (("A.c2", "B.c1"),))
        assert fingerprint_key(fp) == fingerprint_key(fp)
        assert len(fingerprint_key(fp)) == 12
        assert fingerprint_key(fp) != fingerprint_key((("A", "C"), ()))


class TestLearnJoin:
    def test_ewma_math_is_exact(self):
        store = FeedbackStore(policy=FeedbackPolicy(
            alpha=0.5, min_observations=10))
        store.learn_join([AB], 0.4)
        store.learn_join([AB], 0.2)
        stats = store.join_stats()["A.c2=B.c1"]
        assert stats["selectivity"] == pytest.approx(0.3)
        assert stats["observations"] == 2

    def test_not_applied_before_min_observations(self):
        store = FeedbackStore(policy=FeedbackPolicy(min_observations=3))
        assert store.learn_join([AB], 0.1) is False
        assert store.learn_join([AB], 0.1) is False
        assert store.learned_join_selectivity(join_key(AB)) is None
        assert store.learn_join([AB], 0.1) is True
        assert store.learned_join_selectivity(join_key(AB)) \
            == pytest.approx(0.1)

    def test_apply_threshold_stops_churn(self):
        store = FeedbackStore(policy=FeedbackPolicy(
            alpha=1.0, apply_threshold=0.5))
        assert store.learn_join([AB], 0.1) is True
        # 2% drift < 50% threshold: EWMA moves, overlay does not.
        assert store.learn_join([AB], 0.102) is False
        assert store.learned_join_selectivity(join_key(AB)) \
            == pytest.approx(0.1)
        assert store.stats_epoch == 1
        # 3x drift crosses the threshold: reapplied, epoch advances.
        assert store.learn_join([AB], 0.3) is True
        assert store.stats_epoch == 2

    def test_force_bypasses_gates_and_resets_ewma(self):
        store = FeedbackStore(policy=FeedbackPolicy(
            alpha=0.5, min_observations=100))
        store.learn_join([AB], 0.9)
        assert store.learned_join_selectivity(join_key(AB)) is None
        assert store.learn_join([AB], 0.01, force=True) is True
        stats = store.join_stats()["A.c2=B.c1"]
        # The overrun proved the old belief wrong, not just stale.
        assert stats["selectivity"] == pytest.approx(0.01)
        assert stats["applied"] == pytest.approx(0.01)

    def test_multi_predicate_joins_are_not_learnable(self):
        store = FeedbackStore()
        other = JoinPredicate("A.c1", "B.c2")
        assert store.learn_join([AB, other], 0.1) is False
        assert store.join_stats() == {}

    def test_observed_values_are_clamped(self):
        store = FeedbackStore()
        store.learn_join([AB], 7.0)
        assert store.join_stats()["A.c2=B.c1"]["selectivity"] == 1.0
        store2 = FeedbackStore()
        store2.learn_join([AB], 0.0)
        assert store2.join_stats()["A.c2=B.c1"]["selectivity"] > 0.0


class TestPlanEpoch:
    def test_epoch_counts_only_touched_joins(self):
        store = FeedbackStore()
        store.learn_join([AB], 0.1, force=True)

        class Q:
            predicates = (AB,)

        class Other:
            predicates = (JoinPredicate("B.c2", "C.c1"),)

        assert store.plan_epoch(Q) == 1
        assert store.plan_epoch(Other) == 0
        store.learn_join([AB], 0.5, force=True)
        assert store.plan_epoch(Q) == 2
        assert store.plan_epoch(Other) == 0


class TestObserveReport:
    def test_execution_reports_feed_the_store(self):
        db = make_db(feedback=True)
        report = db.execute(SQL)
        summary = report.feedback
        assert summary["fingerprint"]
        assert summary["observations"] == 1
        assert summary["depth_error"] is not None
        assert "A.c2=B.c1" in summary["joins"]
        # The observed selectivity lands near the true 1/domain.
        real = 1.0 / 15
        learned = summary["joins"]["A.c2=B.c1"]
        assert 0.0 < learned < 10 * real

    def test_repeated_reports_accumulate_per_fingerprint(self):
        db = make_db(feedback=True)
        db.execute(SQL)
        report = db.execute(SQL)
        assert report.feedback["observations"] == 2
        rows = db.feedback.accuracy_by_fingerprint()
        assert len(rows) == 1
        assert rows[0]["observations"] == 2
        assert rows[0]["label"] == "A*B[A.c2=B.c1]"

    def test_describe_and_analyze_render_feedback(self):
        db = make_db(feedback=True)
        report = db.execute(SQL)
        assert "feedback store:" in db.feedback.describe()
        assert "A*B[A.c2=B.c1]" in db.feedback.describe()
        assert "feedback:" in report.analyze()

    def test_no_store_no_feedback_attribute_value(self):
        db = make_db(feedback=False)
        report = db.execute(SQL)
        assert report.feedback is None
        assert db.feedback is None


class TestCatalogOverlay:
    def test_learned_outranks_explicit_override(self):
        db = make_db(feedback=True)
        db.set_join_selectivity("A.c2", "B.c1", 0.9)
        db.feedback.learn_join([AB], 0.01, force=True)
        assert db.catalog.join_selectivity("A", "A.c2", "B", "B.c1") \
            == pytest.approx(0.01)

    def test_unlearned_joins_fall_through(self):
        db = make_db(feedback=True)
        db.set_join_selectivity("A.c2", "B.c1", 0.9)
        assert db.catalog.join_selectivity("A", "A.c2", "B", "B.c1") \
            == pytest.approx(0.9)

    def test_learned_update_does_not_bump_catalog_version(self):
        db = make_db(feedback=True)
        version = db.catalog.version
        db.feedback.learn_join([AB], 0.01, force=True)
        assert db.catalog.version == version
        assert db.catalog.stats_epoch == 1


class TestEpochInvalidation:
    def test_learned_update_replans_only_affected_shape(self):
        db = make_db(feedback=True)
        mis_estimate(db, 8.0)
        other = SQL.replace("A.c2 = B.c1", "A.c1 = B.c2")

        prepared = db.prepare(SQL)
        unrelated = db.prepare(other)
        first = prepared.explain()
        unrelated.explain()
        misses = db.plan_cache.stats()["misses"]

        # An applied learned update over A.c2=B.c1 stales SQL's entry...
        db.feedback.learn_join([AB], 1.0 / 15, force=True)
        second = prepared.explain()
        assert db.plan_cache.stats()["misses"] == misses + 1
        assert second.stats_epoch > first.stats_epoch
        # ... while the shape over other columns stays cached.
        unrelated.explain()
        assert db.plan_cache.stats()["misses"] == misses + 1

    def test_replanned_plan_uses_learned_selectivity(self):
        db = make_db(feedback=True)
        mis_estimate(db, 8.0)
        cold = db.explain(SQL).best_plan.selectivity
        db.feedback.learn_join([AB], 1.0 / 15, force=True)
        learned = db.explain(SQL).best_plan.selectivity
        assert cold == pytest.approx(8.0 / 15)
        assert learned == pytest.approx(1.0 / 15)


class TestPersistence:
    def test_jsonl_roundtrip(self, tmp_path):
        path = tmp_path / "feedback.jsonl"
        store = FeedbackStore(path=path)
        store.learn_join([AB], 0.02, force=True)

        db = make_db(feedback=True)
        db.feedback = None  # observe manually through the file-backed one
        report = db.execute(SQL)
        store.observe_report(report.query, report)

        lines = [json.loads(line)
                 for line in path.read_text().splitlines()]
        assert {record["kind"] for record in lines} == {"join", "report"}

        revived = FeedbackStore(path=path)
        assert revived.learned_join_selectivity(join_key(AB)) is not None
        assert revived.join_stats().keys() == store.join_stats().keys()
        assert revived.query_stats().keys() == store.query_stats().keys()

    def test_database_accepts_path_as_feedback(self, tmp_path):
        path = tmp_path / "stats.jsonl"
        db = make_db(feedback=str(path))
        db.execute(SQL)
        assert path.exists()
        # A second database resumes with the learned state intact.
        db2 = make_db(feedback=str(path))
        assert db2.feedback.query_stats()


class TestMetricsWiring:
    def test_feedback_counters_and_gauge(self):
        db = make_db(feedback=True)
        db.execute(SQL)
        db.execute(SQL)
        metrics = db.metrics
        assert metrics.counter("feedback_observations_total").value(
            kind="report") == 2
        assert metrics.counter("feedback_overrides_total").total() >= 1
        fingerprint = db.feedback.accuracy_by_fingerprint()[0][
            "fingerprint"]
        gauge = metrics.gauge("feedback_depth_error_ewma")
        assert gauge.value(fingerprint=fingerprint) is not None


class TestConvergence:
    @given(factor=st.floats(min_value=4.0, max_value=16.0,
                            allow_nan=False))
    @settings(max_examples=5, deadline=None)
    def test_depth_error_shrinks_monotonically(self, factor):
        """Re-executing a mis-estimated query must never increase the
        smoothed depth-estimate error: the first run learns the true
        selectivity, later plans use it, and the EWMA decays toward
        the (smaller) learned-plan error."""
        db = make_db(feedback=True)
        mis_estimate(db, factor)
        errors = []
        for _ in range(4):
            errors.append(db.execute(SQL).feedback["depth_error"])
        assert all(e is not None for e in errors)
        assert all(later <= earlier + 1e-12
                   for earlier, later in zip(errors, errors[1:]))
        # And strictly: learning actually reduced the error.
        assert errors[-1] < errors[0]

    def test_learned_runs_beat_cold_error(self):
        cold_db = make_db(feedback=True)
        mis_estimate(cold_db, 8.0)
        cold = cold_db.execute(SQL).feedback["depth_error"]

        warm_db = make_db(feedback=True)
        mis_estimate(warm_db, 8.0)
        warm_db.feedback.learn_join([AB], 1.0 / 15, force=True)
        warm = warm_db.execute(SQL).feedback["depth_error"]
        assert warm < cold
