"""Unit tests for the filter/restart top-k baseline."""

import pytest

from repro.common.errors import ExecutionError
from repro.data.generators import generate_ranked_table
from repro.operators.joins import HashJoin
from repro.operators.scan import TableScan
from repro.operators.topk import TopK
from repro.ranking.filter_restart import filter_restart_topk


def make_pair(n=400, selectivity=0.05, seed=0):
    left = generate_ranked_table("L", n, selectivity=selectivity, seed=seed)
    right = generate_ranked_table(
        "R", n, selectivity=selectivity, seed=seed + 1,
    )
    return left, right


def run_filter_restart(left, right, k, selectivity, **kwargs):
    return filter_restart_topk(
        left.scan(), right.scan(),
        lambda r: r["L.key"], lambda r: r["R.key"],
        lambda r: r["L.score"], lambda r: r["R.score"],
        k, selectivity, **kwargs,
    )


def baseline_scores(left, right, k):
    join = HashJoin(TableScan(left), TableScan(right), "L.key", "R.key")
    key = lambda r: r["L.score"] + r["R.score"]
    return [round(key(r), 9) for r in TopK(join, k, key, description="f")]


class TestCorrectness:
    def test_matches_baseline(self):
        left, right = make_pair()
        result = run_filter_restart(left, right, 10, 0.05)
        got = [round(score, 9) for score, _l, _r in result.rows]
        assert got == baseline_scores(left, right, 10)

    def test_large_k_forces_restarts_but_stays_correct(self):
        left, right = make_pair(seed=3)
        result = run_filter_restart(left, right, 200, 0.05)
        got = [round(score, 9) for score, _l, _r in result.rows]
        assert got == baseline_scores(left, right, 200)

    def test_k_exceeding_join_size(self):
        left, right = make_pair(n=30, selectivity=0.2, seed=4)
        result = run_filter_restart(left, right, 10 ** 6, 0.2)
        join = HashJoin(TableScan(left), TableScan(right),
                        "L.key", "R.key")
        assert len(result.rows) == len(list(join))

    def test_rows_sorted_descending(self):
        left, right = make_pair(seed=5)
        result = run_filter_restart(left, right, 25, 0.05)
        scores = [score for score, _l, _r in result.rows]
        assert scores == sorted(scores, reverse=True)


class TestRestartBehaviour:
    def test_bad_selectivity_guess_causes_restarts(self):
        """Overestimating selectivity picks too tight a cutoff: the
        first attempt passes too few results and a restart follows --
        the risk the paper's related work [11] prices."""
        left, right = make_pair(seed=6)
        result = run_filter_restart(left, right, 50, 0.8)
        assert result.restarts >= 1
        got = [round(score, 9) for score, _l, _r in result.rows]
        assert got == baseline_scores(left, right, 50)

    def test_restarts_recorded_with_cutoffs(self):
        left, right = make_pair(seed=7)
        result = run_filter_restart(left, right, 50, 0.8)
        assert len(result.cutoffs) == result.restarts + 1
        # Cutoffs relax monotonically.
        assert result.cutoffs == sorted(result.cutoffs, reverse=True)

    def test_tuples_consumed_counts_scans(self):
        left, right = make_pair(n=100, seed=8)
        result = run_filter_restart(left, right, 5, 0.05)
        assert result.tuples_consumed >= 200  # At least one full pass.

    def test_non_convergence_guard(self):
        # A wildly over-estimated selectivity picks a near-maximal
        # cutoff; with a relax factor of ~1 the cutoff never loosens.
        left, right = make_pair(n=50, selectivity=0.2, seed=9)
        with pytest.raises(ExecutionError, match="did not converge"):
            run_filter_restart(
                left, right, 10, 0.9999,
                relax_factor=1.0 + 1e-12, max_restarts=3,
            )
