"""The report generator and golden-plan regression tests."""

import pytest

from repro.cost.model import CostModel
from repro.data.catalogs import make_abc_catalog
from repro.experiments.figures import generate_report
from repro.optimizer.enumerator import Optimizer, OptimizerConfig
from repro.optimizer.expressions import ScoreExpression
from repro.optimizer.query import JoinPredicate, RankQuery


class TestReport:
    @pytest.fixture(scope="class")
    def report(self):
        return generate_report()

    def test_contains_every_section(self, report):
        for marker in ("Figure 1", "Figures 2-3", "Table 1",
                       "Figure 6", "Figure 13", "Figure 15"):
            assert marker in report

    def test_memo_counts_in_report(self, report):
        for pair in ("12 |    12", "15 |    15", "17 |    17"):
            assert pair in report

    def test_k_star_reported(self, report):
        assert "k* = 175" in report


class TestGoldenPlans:
    """Exact plan choices for pinned seeds and cost model.

    These are regression nets: a change in enumeration, pruning, or
    costing that alters the chosen plan shape must be noticed (and, if
    intended, the goldens updated).
    """

    @pytest.fixture(scope="class")
    def catalog(self):
        return make_abc_catalog()

    def q2(self, k=5):
        return RankQuery(
            tables="ABC",
            predicates=[JoinPredicate("A.c2", "B.c1"),
                        JoinPredicate("B.c2", "C.c2")],
            ranking=ScoreExpression({"A.c1": 0.3, "B.c1": 0.3,
                                     "C.c1": 0.3}),
            k=k,
        )

    def test_rank_aware_q2_plan_shape(self, catalog):
        optimizer = Optimizer(catalog, CostModel(), OptimizerConfig())
        plan = optimizer.optimize(self.q2()).best_plan
        explain = plan.explain()
        # The winner is a rank-join pipeline over ranked access paths.
        assert explain.splitlines()[0].startswith(("NRJN", "HRJN"))
        assert "IndexScan" in explain
        assert plan.pipelined

    def test_traditional_q2_plan_shape(self, catalog):
        optimizer = Optimizer(catalog, CostModel(),
                              OptimizerConfig(rank_aware=False))
        plan = optimizer.optimize(self.q2()).best_plan
        explain = plan.explain()
        assert explain.splitlines()[0].startswith("Sort")
        assert not plan.pipelined

    def test_plan_choice_deterministic(self, catalog):
        optimizer = Optimizer(catalog, CostModel(), OptimizerConfig())
        first = optimizer.optimize(self.q2()).best_plan.explain()
        second = optimizer.optimize(self.q2()).best_plan.explain()
        assert first == second

    def test_costs_stable_across_runs(self, catalog):
        optimizer = Optimizer(catalog, CostModel(), OptimizerConfig())
        plan = optimizer.optimize(self.q2()).best_plan
        assert plan.cost(5) == plan.cost(5)
        # Golden magnitude band: the chosen plan's cost at k=5 on this
        # pinned catalog stays within an order of magnitude.
        assert 10 < plan.cost(5) < 10000
