"""Fault injection: the operator tree never leaks open state.

Proves the lifecycle contract under hostile conditions: faults raised
from ``open()``, ``next()``, and ``close()`` at configurable points,
transient faults absorbed by retry-with-backoff, and -- the key
invariant -- every operator's ``close()`` runs after a mid-query
``ExecutionError``.  Also pins the plain error paths (double open,
``next()`` before ``open()``, idempotent ``close()``).
"""

import pytest

from repro.common.errors import ExecutionError, TransientFaultError
from repro.common.rng import make_rng
from repro.common.types import Row
from repro.executor.database import Database
from repro.operators.base import Operator
from repro.operators.hrjn import HRJN
from repro.operators.scan import IndexScan, TableScan
from repro.operators.topk import Limit
from repro.robustness.faults import (
    FaultPlan,
    FaultSpec,
    FaultyOperator,
    RetryingOperator,
    inject_faults,
)

SQL = """
WITH Ranked AS (
  SELECT A.c1 AS x, B.c2 AS y,
         rank() OVER (ORDER BY (0.3*A.c1 + 0.7*B.c2)) AS rank
  FROM A, B WHERE A.c2 = B.c1)
SELECT x, y, rank FROM Ranked WHERE rank <= 5
"""


def make_db(rows=120, seed=3, domain=10):
    rng = make_rng(seed)
    db = Database()
    db.create_table("A", [("c1", "float"), ("c2", "int")], rows=[
        [float(rng.uniform(0, 1)), int(rng.integers(0, domain))]
        for _ in range(rows)
    ])
    db.create_table("B", [("c1", "int"), ("c2", "float")], rows=[
        [int(rng.integers(0, domain)), float(rng.uniform(0, 1))]
        for _ in range(rows)
    ])
    db.analyze()
    return db


class _Spy(Operator):
    """Pass-through operator recording its lifecycle events."""

    def __init__(self, child, events, label):
        super().__init__(children=(child,), name="Spy(%s)" % (label,))
        self.events = events
        self.label = label

    @property
    def schema(self):
        return self.children[0].schema

    def _open(self):
        self.events.append(("open", self.label))

    def _next(self):
        return self._pull(0)

    def _close(self):
        self.events.append(("close", self.label))


def hand_built_join(db, left_wrap=None, right_wrap=None):
    a = db.catalog.table("A")
    b = db.catalog.table("B")
    left = IndexScan(a, a.find_index_on("A.c1"))
    right = IndexScan(b, b.find_index_on("B.c2"))
    if left_wrap is not None:
        left = left_wrap(left)
    if right_wrap is not None:
        right = right_wrap(right)
    return HRJN(left, right, "A.c2", "B.c1", "A.c1", "B.c2")


class TestErrorPaths:
    """The plain lifecycle error paths fault injection builds on."""

    def test_double_open_rejected(self, small_table):
        scan = TableScan(small_table)
        scan.open()
        with pytest.raises(ExecutionError, match="already open"):
            scan.open()
        scan.close()

    def test_next_before_open_rejected(self, small_table):
        with pytest.raises(ExecutionError, match="not open"):
            TableScan(small_table).next()

    def test_close_is_idempotent(self, small_table):
        scan = TableScan(small_table)
        scan.close()  # Never opened: no-op.
        scan.open()
        scan.close()
        scan.close()  # Second close: no-op, no error.
        assert not scan._opened

    def test_execution_error_propagates_through_iter(self, small_table):
        faulty = FaultyOperator(
            TableScan(small_table), [FaultSpec("x", on="next", at=3)],
        )
        with pytest.raises(ExecutionError, match="injected"):
            list(faulty)
        assert not faulty._opened


class TestCleanUnwind:
    """Every operator's close() runs after a mid-query failure."""

    def test_all_operators_closed_after_mid_query_fault(self):
        db = make_db()
        join = hand_built_join(
            db, right_wrap=lambda op: FaultyOperator(
                op, [FaultSpec("x", on="next", at=4)]),
        )
        root = Limit(join, 10)
        with pytest.raises(ExecutionError, match="injected"):
            list(root)
        assert all(not op._opened for op in root.walk())

    def test_all_closes_ran_after_mid_query_fault(self):
        events = []
        db = make_db()
        a = db.catalog.table("A")
        b = db.catalog.table("B")
        left = _Spy(IndexScan(a, a.find_index_on("A.c1")), events, "L")
        right = _Spy(FaultyOperator(
            IndexScan(b, b.find_index_on("B.c2")),
            [FaultSpec("x", on="next", at=3)],
        ), events, "R")
        root = Limit(
            HRJN(left, right, "A.c2", "B.c1", "A.c1", "B.c2"), 10,
        )
        with pytest.raises(ExecutionError):
            list(root)
        assert ("close", "L") in events
        assert ("close", "R") in events

    def test_partial_open_closes_opened_siblings(self):
        """If a child's open() fails midway through Operator.open, the
        already-opened siblings must be closed before re-raising."""
        events = []
        db = make_db()
        join = hand_built_join(
            db,
            left_wrap=lambda op: _Spy(op, events, "L"),
            right_wrap=lambda op: FaultyOperator(
                op, [FaultSpec("x", on="open", at=1)]),
        )
        with pytest.raises(ExecutionError, match="injected"):
            join.open()
        # The left subtree opened first, then the right child's open
        # failed -- the fixed Operator.open closed the left again.
        assert ("open", "L") in events
        assert ("close", "L") in events
        assert all(not op._opened for op in join.walk())

    def test_fault_in_own_open_unwinds_children(self):
        events = []
        db = make_db()
        join = hand_built_join(
            db,
            left_wrap=lambda op: _Spy(op, events, "L"),
            right_wrap=lambda op: _Spy(op, events, "R"),
        )
        faulty_root = FaultyOperator(
            join, [FaultSpec("x", on="open", at=1)],
        )
        with pytest.raises(ExecutionError, match="injected"):
            faulty_root.open()
        assert ("close", "L") in events and ("close", "R") in events
        assert all(not op._opened for op in faulty_root.walk())

    def test_fault_in_close_still_closes_everyone(self):
        events = []
        db = make_db()
        join = hand_built_join(
            db,
            left_wrap=lambda op: FaultyOperator(
                _Spy(op, events, "L"), [FaultSpec("x", on="close", at=1)]),
            right_wrap=lambda op: _Spy(op, events, "R"),
        )
        root = Limit(join, 3)
        root.open()
        with pytest.raises(ExecutionError, match="injected"):
            root.close()
        # The faulty close still propagated, but every other subtree
        # (including the faulty operator's own child) was closed.
        assert ("close", "L") in events
        assert ("close", "R") in events
        assert all(not op._opened for op in root.walk())


class TestTransientFaultsAndRetry:
    def test_transient_fault_without_retry_propagates(self, small_table):
        faulty = FaultyOperator(
            TableScan(small_table),
            [FaultSpec("x", on="next", at=2, transient=True)],
        )
        with pytest.raises(TransientFaultError):
            list(faulty)

    def test_retry_absorbs_transient_next_faults(self, small_table):
        reference = [r["T.id"] for r in TableScan(small_table)]
        sleeps = []
        retry = RetryingOperator(
            FaultyOperator(
                TableScan(small_table),
                [FaultSpec("x", on="next", at=3, times=2, transient=True)],
            ),
            max_retries=3, backoff=0.01, sleep=sleeps.append,
        )
        rows = [r["T.id"] for r in retry]
        assert rows == reference  # Nothing skipped or duplicated.
        assert retry.retries == 2
        # Exponential backoff: second retry sleeps twice as long.
        assert sleeps == [0.01, 0.02]

    def test_retry_budget_exhaustion_reraises(self, small_table):
        retry = RetryingOperator(
            FaultyOperator(
                TableScan(small_table),
                [FaultSpec("x", on="next", at=1, times=5, transient=True)],
            ),
            max_retries=2, backoff=0.0,
        )
        with pytest.raises(TransientFaultError):
            list(retry)
        assert not retry._opened

    def test_retry_does_not_swallow_permanent_faults(self, small_table):
        retry = RetryingOperator(
            FaultyOperator(
                TableScan(small_table), [FaultSpec("x", on="next", at=2)],
            ),
            max_retries=5, backoff=0.0,
        )
        with pytest.raises(ExecutionError):
            list(retry)

    def test_retry_reopens_after_transient_open_fault(self, small_table):
        retry = RetryingOperator(
            FaultyOperator(
                TableScan(small_table),
                [FaultSpec("x", on="open", at=1, times=1, transient=True)],
            ),
            max_retries=1, backoff=0.0,
        )
        assert len(list(retry)) == 10
        assert retry.retries == 1


class TestFaultPlanInjection:
    def test_inject_by_name_wraps_matching_operators(self):
        db = make_db()
        join = hand_built_join(db)
        scans = [op.name for op in join.walk() if isinstance(op, IndexScan)]
        plan = FaultPlan([FaultSpec(scans[0], on="next", at=2)])
        root = inject_faults(Limit(join, 5), plan)
        assert any(isinstance(op, FaultyOperator) for op in root.walk())
        with pytest.raises(ExecutionError, match="injected"):
            list(root)
        assert all(not op._opened for op in root.walk())

    def test_inject_by_predicate_and_root_wrap(self, small_table):
        scan = TableScan(small_table)
        plan = FaultPlan([FaultSpec(
            lambda op: isinstance(op, TableScan), on="next", at=1,
        )])
        root = inject_faults(scan, plan)
        assert isinstance(root, FaultyOperator)
        with pytest.raises(ExecutionError):
            list(root)

    def test_unmatched_plan_leaves_tree_alone(self, small_table):
        scan = TableScan(small_table)
        root = inject_faults(scan, FaultPlan([FaultSpec("nope")]))
        assert root is scan
        assert len(list(root)) == 10

    def test_executor_tree_unwinds_under_injected_fault(self):
        """End to end: inject into a tree the executor built, run the
        query, and verify no operator leaks open state."""
        db = make_db()
        query = db.parse(SQL)
        executor = db.executor()
        result = executor.optimizer.optimize(query)
        root = executor.builder.build_query(result)
        root = inject_faults(root, FaultPlan([FaultSpec(
            lambda op: isinstance(op, IndexScan), on="next", at=3,
        )]))
        with pytest.raises(ExecutionError, match="injected"):
            list(root)
        assert all(not op._opened for op in root.walk())

    def test_spec_validation(self):
        with pytest.raises(ExecutionError):
            FaultSpec("x", on="flush")
        with pytest.raises(ExecutionError):
            FaultSpec("x", at=0)
        with pytest.raises(ExecutionError):
            FaultSpec("x", times=0)


class TestRetryRowIntegrity:
    def test_results_identical_to_unfaulted_run(self):
        """A flaky-but-retried scan produces the exact ranked stream an
        unfaulted run would -- faults fire before the pull, so retries
        never drop or duplicate tuples."""
        db = make_db()
        reference = [
            round(r["_score_HRJN"], 9)
            for r in Limit(hand_built_join(db), 8)
        ]
        join = hand_built_join(
            db, left_wrap=lambda op: RetryingOperator(
                FaultyOperator(op, [
                    FaultSpec("x", on="next", at=2, times=1, transient=True),
                    FaultSpec("x", on="next", at=5, times=2, transient=True),
                ]),
                max_retries=3, backoff=0.0,
            ),
        )
        got = [round(r["_score_HRJN"], 9) for r in Limit(join, 8)]
        assert got == reference


def test_row_type_passthrough(small_table):
    faulty = FaultyOperator(TableScan(small_table), [])
    rows = list(faulty)
    assert len(rows) == 10
    assert all(isinstance(r, Row) for r in rows)
