"""Property-based fuzzing of the full optimize+execute pipeline.

Random catalogs, random join topologies (chains/stars over 2-4
tables), random weights, filters, and k -- every plan the optimizer
picks must produce exactly the brute-force top-k, and the MEMO must
satisfy its structural invariants.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.rng import make_rng
from repro.executor.database import Database
from repro.optimizer.enumerator import OptimizerConfig
from repro.optimizer.expressions import ScoreExpression
from repro.optimizer.query import (
    FilterPredicate,
    JoinPredicate,
    RankQuery,
)

_TABLES = ("A", "B", "C", "D")


@st.composite
def scenarios(draw):
    n_tables = draw(st.integers(min_value=2, max_value=4))
    tables = _TABLES[:n_tables]
    topology = draw(st.sampled_from(("chain", "star")))
    if topology == "chain":
        predicates = [
            JoinPredicate("%s.c2" % tables[i], "%s.c2" % tables[i + 1])
            for i in range(n_tables - 1)
        ]
    else:
        hub = tables[0]
        predicates = [
            JoinPredicate("%s.c2" % hub, "%s.c2" % other)
            for other in tables[1:]
        ]
    weights = {
        "%s.c1" % table: draw(st.sampled_from((0.2, 0.5, 1.0)))
        for table in tables
    }
    k = draw(st.integers(min_value=1, max_value=15))
    add_filter = draw(st.booleans())
    filters = []
    if add_filter:
        filters.append(FilterPredicate(
            "%s.c2" % draw(st.sampled_from(tables)),
            draw(st.sampled_from(("<=", ">="))),
            draw(st.integers(min_value=1, max_value=4)),
        ))
    seed = draw(st.integers(min_value=0, max_value=10 ** 6))
    config = draw(st.sampled_from((
        OptimizerConfig(),
        OptimizerConfig(rank_aware=False),
        OptimizerConfig(enable_nrjn=False),
        OptimizerConfig(estimation_mode="worst"),
    )))
    return tables, predicates, weights, k, filters, seed, config


def build_db(tables, seed, config):
    rng = make_rng(seed)
    db = Database(config=config)
    for name in tables:
        db.create_table(
            name, [("c1", "float"), ("c2", "int")],
            rows=[[float(rng.uniform(0, 1)), int(rng.integers(0, 5))]
                  for _ in range(25)],
        )
    db.analyze()
    return db


def brute_force(db, query):
    tables = sorted(query.tables)
    partial = [{}]
    included = set()
    for table in tables:
        rows = [dict(r.items()) for r in db.catalog.table(table).scan()]
        predicates = [
            p for p in query.predicates
            if table in p.tables and p.tables <= included | {table}
        ]
        filters = [f for f in query.filters if f.table == table]
        extended = []
        for merged in partial:
            for row in rows:
                if not all(
                        FilterPredicate._OPS[f.op](
                            row["%s" % f.column], f.value)
                        for f in filters):
                    continue
                candidate = {**merged, **row}
                if all(candidate[p.left_column]
                       == candidate[p.right_column]
                       for p in predicates):
                    extended.append(candidate)
        partial = extended
        included.add(table)
    scores = sorted(
        (sum(w * merged[c] for c, w in query.ranking.weights.items())
         for merged in partial),
        reverse=True,
    )
    return [round(v, 9) for v in scores[:query.k]]


class TestOptimizerFuzz:
    @given(scenario=scenarios())
    @settings(max_examples=40, deadline=None)
    def test_optimized_execution_matches_brute_force(self, scenario):
        tables, predicates, weights, k, filters, seed, config = scenario
        db = build_db(tables, seed, config)
        query = RankQuery(
            tables=tables, predicates=predicates,
            ranking=ScoreExpression(weights), k=k, filters=filters,
        )
        report = db.execute(query)
        got = [round(query.ranking.evaluate(r), 9) for r in report.rows]
        assert got == brute_force(db, query)

    @given(scenario=scenarios())
    @settings(max_examples=25, deadline=None)
    def test_memo_invariants(self, scenario):
        tables, predicates, weights, k, filters, seed, config = scenario
        db = build_db(tables, seed, config)
        query = RankQuery(
            tables=tables, predicates=predicates,
            ranking=ScoreExpression(weights), k=k, filters=filters,
        )
        memo = db.optimizer().build_memo(query)
        # Root entry exists with at least one plan.
        root = memo.entry(frozenset(tables))
        assert root
        # Every entry is non-empty, connected, and plan tables match
        # the entry key.
        for entry_tables, plans in memo.entries().items():
            assert plans
            assert query.is_connected(entry_tables)
            for plan in plans:
                assert plan.tables == entry_tables
                assert plan.cost(k) >= 0
        # No pair of retained plans dominates each other.
        for _tables, plans in memo.entries().items():
            for i, plan_a in enumerate(plans):
                for plan_b in plans[i + 1:]:
                    assert not (
                        memo._dominates(plan_a, plan_b)
                        or memo._dominates(plan_b, plan_a)
                    )
