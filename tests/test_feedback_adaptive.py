"""Mid-flight re-optimization: learned stats + live state migration.

The adaptive tentpole's end-to-end contract: a depth overrun under the
guarded executor re-enumerates with the corrected selectivity, migrates
the checkpointed operator state into the new tree, and finishes with
results byte-identical to an unperturbed serial run -- across multiple
plan shapes -- while pulling strictly fewer tuples than the
abandon-and-rerun fallback.  Also covers the satellite wiring: overrun
re-estimates reach the store even without a re-plan, and
``Database.resume`` feeds the store from suspended-query executions.
"""

import pytest

from repro.common.rng import make_rng
from repro.cost.model import CostModel
from repro.executor.database import Database
from repro.robustness.budget import ResourceBudget
from repro.robustness.recovery import RecoveryPolicy

#: Aggressive limits so a 4x selectivity mis-estimate overruns early.
POLICY = RecoveryPolicy(overrun_factor=1.1, min_headroom=4,
                        max_reestimates=0)


def make_db(rows=400, seed=3, domain=15, feedback=False, cost_model=None):
    rng = make_rng(seed)
    db = Database(cost_model=cost_model, feedback=feedback)
    db.create_table("A", [("c1", "float"), ("c2", "int")], rows=[
        [float(rng.uniform(0, 1)), int(rng.integers(0, domain))]
        for _ in range(rows)
    ])
    db.create_table("B", [("c1", "int"), ("c2", "float")], rows=[
        [int(rng.integers(0, domain)), float(rng.uniform(0, 1))]
        for _ in range(rows)
    ])
    db.create_table("C", [("c1", "float"), ("c2", "int")], rows=[
        [float(rng.uniform(0, 1)), int(rng.integers(0, domain))]
        for _ in range(rows)
    ])
    db.analyze()
    return db


def mis_estimate(db, factor=4.0, extra=()):
    """Pin the join estimates ``factor``x too high (tight depth limits)."""
    real = db.catalog.join_selectivity("A", "A.c2", "B", "B.c1")
    db.set_join_selectivity("A.c2", "B.c1", min(1.0, real * factor))
    for left, right in extra:
        lt, rt = left.split(".")[0], right.split(".")[0]
        value = db.catalog.join_selectivity(lt, left, rt, right)
        db.set_join_selectivity(left, right, min(1.0, value * factor))
    return real


def two_table(expr, k, extra=""):
    return """
WITH Ranked AS (
  SELECT rank() OVER (ORDER BY (%s)) AS rank
  FROM A, B WHERE A.c2 = B.c1%s)
SELECT rank FROM Ranked WHERE rank <= %d
""" % (expr, extra, k)


THREE_WAY = """
WITH Ranked AS (
  SELECT rank() OVER (ORDER BY (0.2*A.c1 + 0.3*B.c2 + 0.5*C.c1)) AS rank
  FROM A, B, C WHERE A.c2 = B.c1 AND B.c1 = C.c2)
SELECT rank FROM Ranked WHERE rank <= 5
"""

#: id -> (sql, extra mis-estimated joins) -- six distinct plan shapes.
SHAPES = {
    "weighted": (two_table("0.3*A.c1 + 0.7*B.c2", 5), ()),
    "even": (two_table("0.5*A.c1 + 0.5*B.c2", 10), ()),
    "k20": (two_table("0.3*A.c1 + 0.7*B.c2", 20), ()),
    "filtered": (two_table("0.3*A.c1 + 0.7*B.c2", 5, " AND A.c1 > 0.2"),
                 ()),
    "plain_sum": (two_table("A.c1 + B.c2", 8), ()),
    "three_way": (THREE_WAY, (("B.c1", "C.c2"),)),
}


class TestReplanEquivalence:
    @pytest.mark.parametrize("shape", sorted(SHAPES))
    def test_replanned_run_is_byte_identical(self, shape):
        sql, extra = SHAPES[shape]
        reference = make_db().execute_guarded(sql)
        db = make_db(feedback=True)
        mis_estimate(db, extra=extra)
        report = db.execute_guarded(sql, policy=POLICY, checkpoint=2)
        assert db.feedback.replans >= 1, "no mid-flight re-plan happened"
        assert report.rows == reference.rows

    def test_replanned_path_recorded(self):
        sql, _ = SHAPES["weighted"]
        db = make_db(feedback=True)
        mis_estimate(db)
        report = db.execute_guarded(sql, policy=POLICY, checkpoint=2)
        assert report.recovery.path == "replanned"
        events = [e for e in report.recovery.events
                  if e.kind == "replan"]
        assert events and "migrated" in events[0].detail

    def test_replan_pulls_fewer_than_fallback_rerun(self):
        sql, _ = SHAPES["weighted"]
        reference = make_db().execute_guarded(sql)
        fallback_db = make_db()
        mis_estimate(fallback_db)
        fallback = fallback_db.execute_guarded(sql, policy=POLICY)
        assert fallback.recovery.path == "fallback"

        replan_db = make_db(feedback=True)
        mis_estimate(replan_db)
        replanned = replan_db.execute_guarded(sql, policy=POLICY,
                                              checkpoint=2)
        assert replanned.recovery.path == "replanned"
        assert (replanned.recovery.stats["pulled_total"]
                < fallback.recovery.stats["pulled_total"])
        # The fallback's sort plan carries no rank-join score column,
        # so equivalence is asserted against the unperturbed run.
        assert replanned.rows == reference.rows


class TestReplanGates:
    def test_replan_disabled_restores_old_behaviour(self):
        sql, _ = SHAPES["weighted"]
        db = make_db(feedback=True)
        mis_estimate(db)
        report = db.execute_guarded(
            sql, checkpoint=2,
            policy=RecoveryPolicy(overrun_factor=1.1, min_headroom=4,
                                  max_reestimates=0, replan=False),
        )
        assert report.recovery.path == "migrated"
        assert db.feedback.replans == 0

    def test_no_feedback_store_never_replans(self):
        sql, _ = SHAPES["weighted"]
        db = make_db(feedback=False)
        mis_estimate(db)
        report = db.execute_guarded(sql, policy=POLICY, checkpoint=2)
        assert report.recovery.path == "migrated"

    def test_no_checkpointing_never_replans(self):
        sql, _ = SHAPES["weighted"]
        db = make_db(feedback=True)
        mis_estimate(db)
        report = db.execute_guarded(sql, policy=POLICY)
        assert report.recovery.path == "fallback"
        assert db.feedback.replans == 0

    def test_cost_gate_declines_cheap_queries(self):
        """With the re-plan overhead pinned astronomically high, every
        query is too cheap to justify re-enumeration."""
        sql, _ = SHAPES["weighted"]
        expensive = CostModel(inline_shard_startup_cost=1e12)
        reference = make_db(cost_model=expensive).execute_guarded(sql)
        db = make_db(feedback=True, cost_model=expensive)
        mis_estimate(db)
        report = db.execute_guarded(sql, policy=POLICY, checkpoint=2)
        assert db.feedback.replans == 0
        assert report.recovery.path == "migrated"
        assert report.rows == reference.rows
        assert db.metrics.counter("feedback_replans_total").value(
            outcome="declined") >= 1

    def test_replan_counters(self):
        sql, _ = SHAPES["weighted"]
        db = make_db(feedback=True)
        mis_estimate(db)
        db.execute_guarded(sql, policy=POLICY, checkpoint=2)
        assert db.metrics.counter("feedback_replans_total").value(
            outcome="migrated") == 1
        assert db.metrics.counter("feedback_observations_total").value(
            kind="replan") >= 1


class TestOverrunLearning:
    def test_overrun_reestimate_reaches_store_without_replan(self):
        """Satellite: the selectivity the recovery path re-estimates on
        a depth overrun used to die with the query; now it lands in the
        store even when no re-plan happens."""
        sql, _ = SHAPES["weighted"]
        db = make_db(feedback=True)
        real = mis_estimate(db)
        report = db.execute_guarded(sql, policy=POLICY)  # no checkpoint
        assert report.recovery.path == "fallback"
        stats = db.feedback.join_stats().get("A.c2=B.c1")
        assert stats is not None
        # The learned value corrects toward the truth, away from 4x.
        assert abs(stats["selectivity"] - real) < abs(
            4.0 * real - real)
        assert db.metrics.counter("feedback_observations_total").value(
            kind="overrun") >= 1

    def test_next_optimization_plans_with_learned_value(self):
        sql, _ = SHAPES["weighted"]
        db = make_db(feedback=True)
        mis_estimate(db)
        db.execute_guarded(sql, policy=POLICY)
        # The overrun's learned correction re-plans the next run, whose
        # widened estimates now hold: no recovery needed at all.
        second = db.execute_guarded(sql, policy=POLICY)
        assert second.recovery.path == "direct"


class TestResumeFeedsFeedback:
    def test_resumed_query_reports_into_the_store(self):
        sql, _ = SHAPES["weighted"]
        db = make_db(feedback=True)
        report = db.execute_guarded(
            sql, budget=ResourceBudget(max_pulls=120), checkpoint=2)
        assert report.suspended
        # resume(budget=None) reuses the suspended run's 120-pull
        # budget, which can never clear an atomic NRJN open -- resume
        # with an unlimited one instead.
        resumed = db.resume(report.suspension, budget=ResourceBudget())
        assert not resumed.suspended
        assert resumed.feedback is not None
        assert db.feedback.query_stats(), "resume did not observe"

    def test_suspension_checkpoint_not_double_observed(self):
        sql, _ = SHAPES["weighted"]
        db = make_db(feedback=True)
        report = db.execute_guarded(
            sql, budget=ResourceBudget(max_pulls=120), checkpoint=2)
        assert report.suspended
        resumed = db.resume(report.suspension, budget=ResourceBudget())
        assert not resumed.suspended
        counted = db.metrics.counter("feedback_observations_total").value(
            kind="report")
        rows = db.feedback.accuracy_by_fingerprint()
        assert len(rows) == 1
        assert rows[0]["observations"] == counted
