"""Unit tests for Sort, TopK, and Limit."""

import pytest

from repro.common.errors import ExecutionError
from repro.operators.scan import TableScan
from repro.operators.sort import Sort
from repro.operators.topk import Limit, TopK


class TestSort:
    def test_descending_default(self, small_table):
        op = Sort(TableScan(small_table), "T.score")
        scores = [r["T.score"] for r in op]
        assert scores == sorted(scores, reverse=True)

    def test_ascending(self, small_table):
        op = Sort(TableScan(small_table), "T.score", descending=False)
        scores = [r["T.score"] for r in op]
        assert scores == sorted(scores)

    def test_callable_key(self, small_table):
        op = Sort(TableScan(small_table), lambda r: -r["T.id"],
                  description="-T.id")
        assert [r["T.id"] for r in op] == list(range(10))

    def test_blocking_buffers_everything(self, small_table):
        op = Sort(TableScan(small_table), "T.score")
        op.open()
        assert op.stats.max_buffer == 10  # All rows buffered at open.
        op.close()

    def test_not_pipelined(self, small_table):
        assert Sort(TableScan(small_table), "T.score").pipelined is False

    def test_empty_input(self, small_table):
        op = Sort(TableScan(small_table), "T.score")
        op2 = Limit(op, 0)
        assert list(op2) == []


class TestLimit:
    def test_truncates(self, small_table):
        assert len(list(Limit(TableScan(small_table), 3))) == 3

    def test_stops_pulling_early(self, small_table):
        limit = Limit(TableScan(small_table), 3)
        list(limit)
        assert limit.stats.pulled[0] == 3

    def test_k_larger_than_input(self, small_table):
        assert len(list(Limit(TableScan(small_table), 99))) == 10

    def test_k_zero(self, small_table):
        assert list(Limit(TableScan(small_table), 0)) == []

    def test_negative_k_rejected(self, small_table):
        with pytest.raises(ExecutionError):
            Limit(TableScan(small_table), -1)


class TestTopK:
    def test_matches_sort_limit(self, small_table):
        top = list(TopK(TableScan(small_table), 4, "T.score"))
        reference = list(Limit(
            Sort(TableScan(small_table), "T.score"), 4,
        ))
        assert top == reference

    def test_bounded_buffer(self, small_table):
        op = TopK(TableScan(small_table), 3, "T.score")
        list(op)
        assert op.stats.max_buffer == 3

    def test_ties_break_by_arrival(self):
        from repro.storage.table import Table

        table = Table.from_columns("T", [("id", "int"), ("score", "float")])
        for i in range(6):
            table.insert([i, 0.5])  # All tied.
        ids = [r["T.id"] for r in TopK(TableScan(table), 3, "T.score")]
        assert ids == [0, 1, 2]

    def test_ascending(self, small_table):
        op = TopK(TableScan(small_table), 2, "T.score", descending=False)
        scores = [r["T.score"] for r in op]
        assert scores == [0.0, 0.1]

    def test_k_zero(self, small_table):
        assert list(TopK(TableScan(small_table), 0, "T.score")) == []

    def test_negative_k_rejected(self, small_table):
        with pytest.raises(ExecutionError):
            TopK(TableScan(small_table), -2, "T.score")
