"""Checkpoint round-trip contract for every stateful operator.

The contract under test: interrupt any operator tree after ``j`` output
rows, ``state_dict()`` it, load the snapshot into a freshly built
identical tree, and the remaining output is exactly what the
uninterrupted run would have produced -- for every ``j``.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import CheckpointError
from repro.common.rng import make_rng
from repro.operators.anyk import AnyK, AnyKNode
from repro.operators.hrjn import HRJN
from repro.operators.merge import ScoreMerge
from repro.operators.joins import (
    HashJoin,
    IndexNestedLoopsJoin,
    NestedLoopsJoin,
    SymmetricHashJoin,
)
from repro.operators.jstar import JStarRankJoin
from repro.operators.mhrjn import MHRJN
from repro.operators.nrarj import NRARJ
from repro.operators.nrjn import NRJN
from repro.operators.scan import IndexScan, TableScan
from repro.operators.sort import Sort
from repro.operators.topk import Limit, TopK
from repro.storage.index import SortedIndex
from repro.storage.table import Table


def ranked_table(name, n, key_domain=4, seed=0):
    rng = make_rng(seed)
    table = Table.from_columns(
        name, [("id", "int"), ("key", "int"), ("score", "float")]
    )
    for i in range(n):
        table.insert([i, int(rng.integers(0, key_domain)),
                      float(rng.uniform(0, 1))])
    table.create_index(SortedIndex("%s_idx" % name, "%s.score" % name))
    return table


def unique_key_table(name, n, seed=0):
    rng = make_rng(seed)
    table = Table.from_columns(
        name, [("key", "int"), ("score", "float")]
    )
    for i in range(n):
        table.insert([i, float(rng.uniform(0, 1))])
    table.create_index(SortedIndex("%s_idx" % name, "%s.score" % name))
    return table


L = ranked_table("L", 18, seed=11)
R = ranked_table("R", 15, seed=22)
M = ranked_table("M", 12, seed=33)
# NRA-RJ requires unique join keys per input.
UL = unique_key_table("UL", 14, seed=44)
UR = unique_key_table("UR", 14, seed=55)


def shard_tables(base, count, seed):
    """Manual row-wise shards of ``ranked_table(base, ...)`` -- same
    name/schema/index so shard scans emit merge-compatible rows."""
    rng = make_rng(seed)
    shards = [
        Table.from_columns(
            base, [("id", "int"), ("key", "int"), ("score", "float")]
        )
        for _ in range(count)
    ]
    for i in range(18):
        row = [i, int(rng.integers(0, 4)), float(rng.uniform(0, 1))]
        shards[i % count].insert(row)
    for table in shards:
        table.create_index(
            SortedIndex("%s_idx" % base, "%s.score" % base)
        )
    return shards


L_SHARDS = shard_tables("L", 3, seed=11)


def index_scan(table):
    return IndexScan(table, table.get_index("%s_idx" % table.name))


# One factory per stateful operator; each call builds a fresh,
# identically configured tree (a checkpoint must restore into it).
FACTORIES = {
    "table_scan": lambda: TableScan(L),
    "index_scan": lambda: index_scan(L),
    "sort": lambda: Sort(TableScan(L), "L.score", descending=True),
    "limit": lambda: Limit(TableScan(L), 7),
    "topk": lambda: TopK(TableScan(L), 6, "L.score"),
    "nl_join": lambda: NestedLoopsJoin(
        TableScan(L), TableScan(R), "L.key", "R.key"),
    "inl_join": lambda: IndexNestedLoopsJoin(
        TableScan(L), TableScan(R), "L.key", "R.key"),
    "hash_join": lambda: HashJoin(
        TableScan(L), TableScan(R), "L.key", "R.key"),
    "sym_hash_join": lambda: SymmetricHashJoin(
        TableScan(L), TableScan(R), "L.key", "R.key"),
    "hrjn": lambda: HRJN(
        index_scan(L), index_scan(R), "L.key", "R.key",
        "L.score", "R.score", name="RJ"),
    "nrjn": lambda: NRJN(
        index_scan(L), TableScan(R), "L.key", "R.key",
        "L.score", "R.score", name="NR"),
    "mhrjn": lambda: MHRJN(
        (index_scan(L), index_scan(R), index_scan(M)),
        ("L.key", "R.key", "M.key"),
        ("L.score", "R.score", "M.score"), name="M3"),
    "nrarj": lambda: NRARJ(
        index_scan(UL), index_scan(UR), "UL.key", "UR.key",
        "UL.score", "UR.score", name="NA"),
    "jstar": lambda: JStarRankJoin(
        index_scan(L), index_scan(R), "L.key", "R.key",
        "L.score", "R.score", name="JS"),
    "anyk": lambda: AnyK(
        (TableScan(L), TableScan(R), TableScan(M)),
        (AnyKNode(0, None, score_weights=[("L.score", 1.0)]),
         AnyKNode(1, 0, key="R.key", parent_key="L.key",
                  score_weights=[("R.score", 1.0)]),
         AnyKNode(2, 1, key="M.key", parent_key="R.key",
                  score_weights=[("M.score", 1.0)])),
        name="AK"),
    "limit_over_hrjn": lambda: Limit(HRJN(
        index_scan(L), index_scan(R), "L.key", "R.key",
        "L.score", "R.score", name="RJ"), 9),
    "score_merge": lambda: ScoreMerge(
        [index_scan(table) for table in L_SHARDS],
        score_spec="L.score"),
}


def drain(operator, count=None):
    """Pull up to ``count`` rows (all when None); operator stays open."""
    rows = []
    while count is None or len(rows) < count:
        row = operator.next()
        if row is None:
            break
        rows.append(row)
    return rows


def full_run(factory):
    operator = factory()
    operator.open()
    try:
        return drain(operator)
    finally:
        operator.close()


@pytest.mark.parametrize("kind", sorted(FACTORIES))
def test_roundtrip_at_every_interrupt_point(kind):
    factory = FACTORIES[kind]
    expected = full_run(factory)
    assert expected, "factory %s produced no rows" % (kind,)
    for j in range(len(expected) + 1):
        original = factory()
        original.open()
        try:
            prefix = drain(original, j)
            assert prefix == expected[:j]
            state = original.state_dict()
        finally:
            original.close()
        restored = factory()
        restored.load_state_dict(state)
        try:
            assert drain(restored) == expected[j:], (
                "restored %s diverged after %d rows" % (kind, j)
            )
        finally:
            restored.close()


@pytest.mark.parametrize("kind", sorted(FACTORIES))
def test_snapshot_is_reusable(kind):
    """One snapshot restores correctly more than once (no aliasing)."""
    factory = FACTORIES[kind]
    expected = full_run(factory)
    j = len(expected) // 2
    original = factory()
    original.open()
    try:
        drain(original, j)
        state = original.state_dict()
    finally:
        original.close()
    for _ in range(2):
        restored = factory()
        restored.load_state_dict(state)
        try:
            assert drain(restored) == expected[j:]
        finally:
            restored.close()


def test_stats_travel_with_the_snapshot():
    operator = FACTORIES["hrjn"]()
    operator.open()
    drain(operator, 5)
    state = operator.state_dict()
    pulled = list(operator.stats.pulled)
    operator.close()
    restored = FACTORIES["hrjn"]()
    restored.load_state_dict(state)
    assert restored.stats.rows_out == 5
    assert list(restored.stats.pulled) == pulled
    restored.close()


def test_unopened_tree_roundtrip():
    operator = FACTORIES["hrjn"]()
    state = operator.state_dict()
    assert state["opened"] is False
    restored = FACTORIES["hrjn"]()
    restored.load_state_dict(state)
    restored.open()
    try:
        assert drain(restored) == full_run(FACTORIES["hrjn"])
    finally:
        restored.close()


class TestSnapshotValidation:
    def _snapshot(self, kind="hrjn"):
        operator = FACTORIES[kind]()
        operator.open()
        try:
            drain(operator, 3)
            return operator.state_dict()
        finally:
            operator.close()

    def test_wrong_operator_class_rejected(self):
        state = self._snapshot("hrjn")
        with pytest.raises(CheckpointError):
            FACTORIES["nrjn"]().load_state_dict(state)

    def test_wrong_name_rejected(self):
        state = self._snapshot("hrjn")
        other = HRJN(index_scan(L), index_scan(R), "L.key", "R.key",
                     "L.score", "R.score", name="OTHER")
        with pytest.raises(CheckpointError):
            other.load_state_dict(state)

    def test_wrong_child_count_rejected(self):
        state = self._snapshot("hrjn")
        state["children"] = state["children"][:1]
        with pytest.raises(CheckpointError):
            FACTORIES["hrjn"]().load_state_dict(state)


@settings(max_examples=25, deadline=None)
@given(
    left_rows=st.lists(
        st.tuples(st.integers(0, 3), st.floats(0, 1, width=16)),
        min_size=1, max_size=20),
    right_rows=st.lists(
        st.tuples(st.integers(0, 3), st.floats(0, 1, width=16)),
        min_size=1, max_size=20),
    data=st.data(),
)
def test_hrjn_roundtrip_property(left_rows, right_rows, data):
    """Round-trip holds for arbitrary inputs and interrupt points."""
    def build():
        left = Table.from_columns(
            "PL", [("key", "int"), ("score", "float")])
        right = Table.from_columns(
            "PR", [("key", "int"), ("score", "float")])
        for key, score in left_rows:
            left.insert([key, score])
        for key, score in right_rows:
            right.insert([key, score])
        left.create_index(SortedIndex("PL_idx", "PL.score"))
        right.create_index(SortedIndex("PR_idx", "PR.score"))
        return HRJN(
            IndexScan(left, left.get_index("PL_idx")),
            IndexScan(right, right.get_index("PR_idx")),
            "PL.key", "PR.key", "PL.score", "PR.score", name="PRJ",
        )

    expected = full_run(build)
    j = data.draw(st.integers(0, len(expected)), label="interrupt_after")
    original = build()
    original.open()
    try:
        drain(original, j)
        state = original.state_dict()
    finally:
        original.close()
    restored = build()
    restored.load_state_dict(state)
    try:
        assert drain(restored) == expected[j:]
    finally:
        restored.close()
