"""Plan cache, prepared queries, and version-keyed invalidation."""

import pytest

from repro.common.errors import OptimizerError
from repro.common.rng import make_rng
from repro.executor.database import Database
from repro.executor.plan_cache import PlanCache, query_fingerprint
from repro.sql.parser import parse_query
from repro.storage.index import SortedIndex


TOPK_SQL = """
WITH Ranked AS (
  SELECT A.c1 AS x, B.c1 AS y,
         rank() OVER (ORDER BY (0.5*A.c1 + 0.5*B.c1)) AS rank
  FROM A, B WHERE A.c2 = B.c2)
SELECT x, y, rank FROM Ranked WHERE rank <= 10
"""

SIMPLE_SQL = "SELECT A.c1 FROM A ORDER BY A.c1 DESC LIMIT 5"


def build_db(rows=80, seed=3, **kwargs):
    rng = make_rng(seed)
    db = Database(**kwargs)
    for name in ("A", "B"):
        db.create_table(name, [("c1", "float"), ("c2", "int")], rows=[
            [float(rng.uniform(0, 1)), int(rng.integers(0, 8))]
            for _ in range(rows)
        ])
    db.analyze()
    return db


def rows_of(report):
    return [dict(row) for row in report.rows]


class TestCacheHitsAndMisses:
    def test_repeat_execution_hits(self):
        db = build_db()
        first = db.execute(TOPK_SQL)
        assert db.plan_cache.stats()["hits"] == 0
        assert db.plan_cache.stats()["misses"] == 1
        second = db.execute(TOPK_SQL)
        assert db.plan_cache.stats()["hits"] == 1
        assert rows_of(first) == rows_of(second)

    def test_cached_plan_is_the_same_object(self):
        db = build_db()
        first = db.execute(TOPK_SQL)
        second = db.execute(TOPK_SQL)
        assert second.optimization is first.optimization

    def test_whitespace_variants_share_an_entry(self):
        db = build_db()
        db.execute(TOPK_SQL)
        db.execute(TOPK_SQL.replace("\n", " ").strip())
        assert db.plan_cache.stats()["hits"] == 1
        assert db.plan_cache.stats()["size"] == 1

    def test_insert_invalidates(self):
        db = build_db()
        db.execute(TOPK_SQL)
        db.catalog.table("A").insert([0.9, 3])
        db.execute(TOPK_SQL)
        assert db.plan_cache.stats()["hits"] == 0
        assert db.plan_cache.stats()["misses"] == 2

    def test_analyze_invalidates(self):
        db = build_db()
        db.execute(TOPK_SQL)
        db.analyze()
        db.execute(TOPK_SQL)
        assert db.plan_cache.stats()["misses"] == 2

    def test_index_creation_invalidates(self):
        db = build_db()
        db.execute(TOPK_SQL)
        db.catalog.table("A").create_index(
            SortedIndex("A_c2_extra_idx", "A.c2", descending=True)
        )
        db.execute(TOPK_SQL)
        assert db.plan_cache.stats()["misses"] == 2

    def test_selectivity_override_invalidates(self):
        db = build_db()
        db.execute(TOPK_SQL)
        db.catalog.set_join_selectivity("A.c2", "B.c2", 0.05)
        db.execute(TOPK_SQL)
        assert db.plan_cache.stats()["misses"] == 2

    def test_results_stay_correct_after_invalidation(self):
        db = build_db()
        before = rows_of(db.execute(SIMPLE_SQL))
        db.catalog.table("A").insert([2.0, 1])
        after = rows_of(db.execute(SIMPLE_SQL))
        assert before != after
        assert after[0]["A.c1"] == 2.0

    def test_lru_eviction(self):
        db = build_db(plan_cache_size=1)
        db.execute(TOPK_SQL)
        db.execute(SIMPLE_SQL)  # Evicts the top-k plan.
        db.execute(TOPK_SQL)   # Misses again and evicts the simple plan.
        stats = db.plan_cache.stats()
        assert stats["evictions"] == 2
        assert stats["size"] == 1
        assert stats["misses"] == 3

    def test_zero_capacity_disables_caching(self):
        db = build_db(plan_cache_size=0)
        db.execute(TOPK_SQL)
        db.execute(TOPK_SQL)
        stats = db.plan_cache.stats()
        assert stats["hits"] == 0
        assert stats["size"] == 0

    def test_metrics_counters_track_the_cache(self):
        db = build_db()
        db.execute(TOPK_SQL)
        db.execute(TOPK_SQL)
        metrics = {m["name"]: m["value"] for m in db.metrics.as_dicts()}
        assert metrics["plan_cache_hits_total"] == 1
        assert metrics["plan_cache_misses_total"] == 1
        assert metrics["plan_cache_size"] == 1


class TestPreparedQueries:
    def test_prepared_execution_matches_execute(self):
        db = build_db()
        expected = rows_of(db.execute(TOPK_SQL))
        prepared = db.prepare(TOPK_SQL)
        assert rows_of(prepared.execute()) == expected
        assert db.plan_cache.stats()["hits"] == 1

    def test_rebinding_k_returns_a_prefix(self):
        db = build_db()
        prepared = db.prepare(TOPK_SQL)
        full = rows_of(prepared.execute())
        assert len(full) == 10
        top3 = rows_of(prepared.execute(k=3))
        assert top3 == full[:3]

    def test_each_k_gets_its_own_entry(self):
        db = build_db()
        prepared = db.prepare(TOPK_SQL)
        prepared.execute()
        prepared.execute(k=3)
        assert db.plan_cache.stats()["size"] == 2
        prepared.execute(k=3)
        assert db.plan_cache.stats()["hits"] == 1

    def test_bind_memoises_query_objects(self):
        db = build_db()
        prepared = db.prepare(TOPK_SQL)
        assert prepared.bind() is prepared.query
        assert prepared.bind(k=prepared.query.k) is prepared.query
        assert prepared.bind(k=4) is prepared.bind(k=4)
        assert prepared.bind(k=4).k == 4

    def test_bind_rejects_non_ranking_rebind(self):
        db = build_db()
        prepared = db.prepare("SELECT A.c1 FROM A")
        with pytest.raises(OptimizerError):
            prepared.bind(k=5)

    def test_prepared_survives_catalog_changes(self):
        db = build_db()
        prepared = db.prepare(SIMPLE_SQL)
        prepared.execute()
        db.catalog.table("A").insert([2.0, 1])
        report = prepared.execute()
        assert report.rows[0]["A.c1"] == 2.0
        assert db.plan_cache.stats()["misses"] == 2

    def test_explain_goes_through_the_cache(self):
        db = build_db()
        prepared = db.prepare(TOPK_SQL)
        result = prepared.explain()
        assert db.plan_cache.stats()["misses"] == 1
        assert prepared.explain() is result
        assert db.plan_cache.stats()["hits"] == 1

    def test_traced_hit_marks_the_optimize_span(self):
        db = build_db()
        prepared = db.prepare(TOPK_SQL)
        cold = prepared.execute(trace=True)
        warm = prepared.execute(trace=True)
        assert cold.telemetry.tracer.find("optimize").attributes == {}
        assert warm.telemetry.tracer.find("optimize").attributes == {
            "cached": True,
        }


class TestFingerprint:
    def test_k_is_a_bind_parameter(self):
        ten = parse_query(TOPK_SQL)
        three = parse_query(TOPK_SQL.replace("rank <= 10", "rank <= 3"))
        assert ten.k != three.k
        assert query_fingerprint(ten) == query_fingerprint(three)

    def test_predicate_order_is_canonical(self):
        flipped = TOPK_SQL.replace("A.c2 = B.c2", "B.c2 = A.c2")
        assert query_fingerprint(parse_query(TOPK_SQL)) == (
            query_fingerprint(parse_query(flipped))
        )

    def test_different_ranking_differs(self):
        other = TOPK_SQL.replace("0.5*A.c1 + 0.5*B.c1", "A.c1")
        assert query_fingerprint(parse_query(TOPK_SQL)) != (
            query_fingerprint(parse_query(other))
        )

    def test_scaled_weights_share_a_fingerprint(self):
        scaled = TOPK_SQL.replace(
            "0.5*A.c1 + 0.5*B.c1", "0.25*A.c1 + 0.25*B.c1"
        )
        assert query_fingerprint(parse_query(TOPK_SQL)) == (
            query_fingerprint(parse_query(scaled))
        )


class TestPlanCacheUnit:
    def test_lru_order_is_by_recency_of_use(self):
        cache = PlanCache(capacity=2)
        fp_a, fp_b, fp_c = ("a",), ("b",), ("c",)
        cache.put(fp_a, 1, 0, "plan-a")
        cache.put(fp_b, 1, 0, "plan-b")
        assert cache.get(fp_a, 1, 0) == "plan-a"  # Refreshes a.
        cache.put(fp_c, 1, 0, "plan-c")  # Evicts b.
        assert cache.get(fp_b, 1, 0) is None
        assert cache.get(fp_a, 1, 0) == "plan-a"
        assert cache.evictions == 1

    def test_version_mismatch_is_a_miss(self):
        cache = PlanCache(capacity=4)
        cache.put(("q",), 5, 7, "plan")
        assert cache.get(("q",), 5, 8) is None
        assert cache.get(("q",), 5, 7) == "plan"

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=-1)


class TestExecutorMemoisation:
    ALIAS_SQL = """
WITH Ranked AS (
  SELECT a1.c1 AS x,
         rank() OVER (ORDER BY (0.5*a1.c1 + 0.5*a2.c1)) AS rank
  FROM A a1, A a2 WHERE a1.c2 = a2.c2)
SELECT x, rank FROM Ranked WHERE rank <= 5
"""

    def test_derived_executor_is_reused(self):
        db = build_db()
        query = parse_query(self.ALIAS_SQL)
        first = db._executor_for(query)
        assert first is not db.executor
        assert db._executor_for(query) is first

    def test_derived_executor_rebuilt_after_change(self):
        db = build_db()
        query = parse_query(self.ALIAS_SQL)
        first = db._executor_for(query)
        db.catalog.table("A").insert([0.7, 2])
        rebuilt = db._executor_for(query)
        assert rebuilt is not first
        # The rebuilt executor sees the new row through its aliases.
        assert len(rebuilt.catalog.table("a1")) == len(db.catalog.table("A"))

    def test_aliased_results_stay_fresh_after_insert(self):
        db = build_db()
        before = rows_of(db.execute(self.ALIAS_SQL))
        db.catalog.table("A").insert([5.0, 1])
        db.catalog.table("A").insert([5.0, 1])
        after = rows_of(db.execute(self.ALIAS_SQL))
        assert before != after
