"""Unit tests for score expressions."""

import pytest

from repro.common.errors import OptimizerError
from repro.common.types import Row
from repro.optimizer.expressions import ScoreExpression


class TestConstruction:
    def test_weights_copied(self):
        weights = {"A.c1": 0.5}
        expr = ScoreExpression(weights)
        weights["A.c1"] = 99
        assert expr.weights == {"A.c1": 0.5}

    def test_single(self):
        expr = ScoreExpression.single("A.c1")
        assert expr.is_single_column()
        assert expr.columns() == ("A.c1",)

    def test_empty_rejected(self):
        with pytest.raises(OptimizerError):
            ScoreExpression({})

    def test_unqualified_column_rejected(self):
        with pytest.raises(OptimizerError, match="qualified"):
            ScoreExpression({"c1": 1.0})

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(OptimizerError):
            ScoreExpression({"A.c1": 0.0})
        with pytest.raises(OptimizerError):
            ScoreExpression({"A.c1": -1.0})


class TestStructure:
    def test_tables(self):
        expr = ScoreExpression({"A.c1": 0.3, "B.c2": 0.7})
        assert expr.tables() == frozenset({"A", "B"})

    def test_restrict(self):
        expr = ScoreExpression({"A.c1": 0.3, "B.c2": 0.7})
        restricted = expr.restrict({"A"})
        assert restricted.weights == {"A.c1": 0.3}

    def test_restrict_empty(self):
        expr = ScoreExpression({"A.c1": 0.3})
        assert expr.restrict({"Z"}) is None

    def test_combine(self):
        left = ScoreExpression({"A.c1": 0.3})
        right = ScoreExpression({"B.c1": 0.7})
        assert left.combine(right).weights == {"A.c1": 0.3, "B.c1": 0.7}

    def test_combine_overlap_rejected(self):
        expr = ScoreExpression({"A.c1": 0.3})
        with pytest.raises(OptimizerError, match="sharing"):
            expr.combine(expr)


class TestEvaluation:
    def test_evaluate(self):
        expr = ScoreExpression({"A.c1": 0.3, "B.c2": 0.7})
        row = Row({"A.c1": 1.0, "B.c2": 2.0})
        assert expr.evaluate(row) == pytest.approx(1.7)

    def test_accessor(self):
        expr = ScoreExpression({"A.c1": 2.0})
        assert expr.accessor()(Row({"A.c1": 3.0})) == 6.0


class TestOrderEquivalence:
    def test_scaling_invariance(self):
        a = ScoreExpression({"A.c1": 0.3, "B.c1": 0.3})
        b = ScoreExpression({"A.c1": 1.0, "B.c1": 1.0})
        assert a.same_order(b)
        assert a.order_key() == b.order_key()

    def test_different_ratios_differ(self):
        a = ScoreExpression({"A.c1": 0.3, "B.c1": 0.7})
        b = ScoreExpression({"A.c1": 0.5, "B.c1": 0.5})
        assert not a.same_order(b)

    def test_single_column_scaled(self):
        assert ScoreExpression({"A.c1": 0.3}).same_order(
            ScoreExpression({"A.c1": 1.0}),
        )

    def test_description(self):
        expr = ScoreExpression({"B.c2": 0.7, "A.c1": 0.3})
        assert expr.description() == "0.3*A.c1 + 0.7*B.c2"
        assert ScoreExpression.single("A.c1").description() == "A.c1"

    def test_hash_and_eq(self):
        a = ScoreExpression({"A.c1": 0.3})
        b = ScoreExpression({"A.c1": 0.3})
        assert a == b and hash(a) == hash(b)
