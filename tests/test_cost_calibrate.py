"""Tests for cost-model calibration (timing-tolerant)."""

import pytest

from repro.common.errors import EstimationError
from repro.cost.calibrate import calibrate


class TestCalibration:
    @pytest.fixture(scope="class")
    def report(self):
        return calibrate(cardinality=5000, seed=3)

    def test_rates_positive(self, report):
        assert report.scan_per_tuple > 0
        assert report.rank_join_per_tuple > 0

    def test_model_usable(self, report):
        model = report.model
        assert model.cpu_tuple_weight > 0
        assert model.table_scan_cost(1000) > 0
        # Relative structure survives calibration: sorting costs more
        # than scanning.
        assert (model.external_sort_cost(100000)
                > model.table_scan_cost(100000))

    def test_describe(self, report):
        assert "cpu_tuple_weight" in report.describe()

    def test_tiny_cardinality_rejected(self):
        with pytest.raises(EstimationError):
            calibrate(cardinality=10)

    def test_sanity_of_magnitudes(self, report):
        """Python-level per-tuple costs land in a plausible band
        (nanoseconds would mean a broken timer; milliseconds a broken
        engine)."""
        assert 1e-9 < report.scan_per_tuple < 1e-3
        assert 1e-9 < report.rank_join_per_tuple < 1e-2
