"""Property-based tests for the rank-aware ScoreMerge operator.

The central claims (hypothesis-checked over random shard contents):

* the merged stream is exactly the globally-sorted union of the shard
  streams, with ties broken deterministically by shard index;
* stopping after ``k`` rows pulls at most ``contribution + 1`` rows
  from each shard (the early-out the parallel cost model banks on).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ExecutionError
from repro.common.types import Row
from repro.operators.base import Operator, ScoreSpec
from repro.operators.merge import ScoreMerge


class _RankedList(Operator):
    """Pre-baked descending ranked stream for merge tests."""

    def __init__(self, scores, shard, name=None):
        super().__init__(children=(),
                         name=name or "Ranked[s%d]" % (shard,))
        self.score_spec = ScoreSpec.column("s")
        self._rows = [Row({"s": score, "shard": shard, "pos": pos})
                      for pos, score in enumerate(scores)]
        self._position = 0

    @property
    def schema(self):
        return None

    def _open(self):
        self._position = 0

    def _next(self):
        if self._position >= len(self._rows):
            return None
        row = self._rows[self._position]
        self._position += 1
        return row


def _merge_of(shard_scores):
    children = [
        _RankedList(sorted(scores, reverse=True), shard)
        for shard, scores in enumerate(shard_scores)
    ]
    return ScoreMerge(children, score_spec="s")


_scores = st.lists(
    st.floats(min_value=-100, max_value=100,
              allow_nan=False, allow_infinity=False),
    max_size=12,
)
_shards = st.lists(_scores, min_size=1, max_size=5)


class TestMergeProperties:
    @given(_shards)
    @settings(max_examples=200, deadline=None)
    def test_merge_is_sorted_union(self, shard_scores):
        """Merged output == union sorted by (-score, shard, position)."""
        merged = list(_merge_of(shard_scores))
        expected = sorted(
            (row for scores in (
                [Row({"s": s, "shard": i, "pos": p})
                 for p, s in enumerate(sorted(scores, reverse=True))]
                for i, scores in enumerate(shard_scores)
            ) for row in scores),
            key=lambda row: (-row["s"], row["shard"], row["pos"]),
        )
        assert merged == expected

    @given(_shards, st.integers(min_value=0, max_value=20))
    @settings(max_examples=200, deadline=None)
    def test_early_out_pulls(self, shard_scores, k):
        """Top-k consumption pulls <= contribution + 1 per shard."""
        merge = _merge_of(shard_scores)
        merge.open()
        taken = []
        for _ in range(k):
            row = merge.next()
            if row is None:
                break
            taken.append(row)
        contributions = [0] * len(shard_scores)
        for row in taken:
            contributions[row["shard"]] += 1
        for index, pulled in enumerate(merge.depths):
            assert pulled <= contributions[index] + 1
        merge.close()

    @given(_shards)
    @settings(max_examples=50, deadline=None)
    def test_merge_is_deterministic(self, shard_scores):
        assert list(_merge_of(shard_scores)) == list(
            _merge_of(shard_scores)
        )


class TestMergeValidation:
    def test_rejects_unsorted_child(self):
        child = _RankedList([], 0)
        child._rows = [Row({"s": 1.0, "shard": 0, "pos": 0}),
                       Row({"s": 5.0, "shard": 0, "pos": 1})]
        merge = ScoreMerge([child], score_spec="s")
        with pytest.raises(ExecutionError, match="not descending"):
            list(merge)

    def test_rejects_empty_children(self):
        with pytest.raises(ExecutionError, match="at least one child"):
            ScoreMerge([])

    def test_adopts_child_score_spec(self):
        merge = ScoreMerge([_RankedList([3.0, 1.0], 0)])
        assert merge.score_spec.description == "s"
        assert [row["s"] for row in merge] == [3.0, 1.0]
