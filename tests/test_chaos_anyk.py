"""Chaos sweep: crash a 3-way any-k plan at every pull offset.

The any-k analogue of ``test_chaos_crash_anywhere``: a permanent
fault is injected at each successive ``next()`` call of each operator
in ``Limit(AnyK(A, B, C))`` -- a chain joining *different* key columns
per edge.  The faulted tree is abandoned, a fresh plan is rebuilt, the
last checkpoint is restored into it (rebuilding the DP tables and the
Lawler frontier from the snapshot), and the drain continues.  Wherever
the crash lands, the recovered top-k must equal the fault-free answer
exactly.

These tests carry the ``chaos`` marker; CI runs them in a dedicated
job under pytest-timeout (``pytest -m chaos``).
"""

import pytest

from repro.common.errors import ExecutionError
from repro.common.rng import make_rng
from repro.operators.anyk import AnyK, AnyKNode
from repro.operators.scan import TableScan
from repro.operators.topk import Limit
from repro.robustness.checkpoint import CheckpointManager, CheckpointPolicy
from repro.robustness.faults import FaultPlan, FaultSpec, inject_faults
from repro.storage.table import Table

pytestmark = pytest.mark.chaos

K = 6


def keyed_table(name, n, key_domain, seed):
    rng = make_rng(seed)
    table = Table.from_columns(
        name, [("ka", "int"), ("kb", "int"), ("score", "float")]
    )
    for _ in range(n):
        table.insert([int(rng.integers(0, key_domain)),
                      int(rng.integers(0, key_domain)),
                      float(rng.uniform(0, 1))])
    return table


A = keyed_table("A", 14, key_domain=4, seed=404)
B = keyed_table("B", 14, key_domain=4, seed=505)
C = keyed_table("C", 14, key_domain=4, seed=606)


def build_plan():
    """Fresh 3-way any-k tree: Limit(AnyK(A -ka- B -kb- C), K)."""
    operator = AnyK(
        (TableScan(A), TableScan(B), TableScan(C)),
        (AnyKNode(0, None, score_weights=[("A.score", 1.0)]),
         AnyKNode(1, 0, key="B.ka", parent_key="A.ka",
                  score_weights=[("B.score", 1.0)]),
         AnyKNode(2, 1, key="C.kb", parent_key="B.kb",
                  score_weights=[("C.score", 1.0)])),
        name="AK",
    )
    return Limit(operator, K, name="TOP")


def drain(operator):
    rows = []
    while True:
        row = operator.next()
        if row is None:
            return rows
        rows.append(row)


def fault_free_topk():
    root = build_plan()
    root.open()
    try:
        return drain(root)
    finally:
        root.close()


EXPECTED = fault_free_topk()

_CALLS = {}
_probe = build_plan()
_probe.open()
drain(_probe)
for _op in _probe.walk():
    _CALLS[_op.name] = _op.stats.rows_out
_probe.close()

SWEEP = [(name, offset)
         for name, calls in sorted(_CALLS.items())
         for offset in range(1, calls + 1)]


def run_with_crash_recovery(fault_plan):
    """Run the faulted plan; on crash, restore into a fresh rebuild."""
    root = inject_faults(build_plan(), fault_plan)
    manager = CheckpointManager(root, CheckpointPolicy(every_rows=1))
    rows = []
    opened = False
    crashed = False
    while True:
        try:
            if not opened:
                root.open()
                opened = True
            row = root.next()
        except ExecutionError:
            assert not crashed, "the single injected fault fired twice"
            crashed = True
            root.close()
            fresh = build_plan()
            if manager.latest is not None:
                rows = manager.restore(root=fresh)
                opened = fresh._opened
            else:
                rows = []
                manager.root = fresh
                opened = False
            root = fresh
            continue
        if row is None:
            break
        rows.append(row)
        manager.checkpoint(rows)
    root.close()
    return rows, crashed


@pytest.mark.timeout(120)
@pytest.mark.parametrize("target,offset", SWEEP)
def test_crash_at_every_pull_offset(target, offset):
    fault = FaultPlan([FaultSpec(target, on="next", at=offset)])
    rows, crashed = run_with_crash_recovery(fault)
    assert crashed, "fault at %s call %d never fired" % (target, offset)
    assert rows == EXPECTED


@pytest.mark.timeout(120)
@pytest.mark.parametrize("target", sorted(_CALLS))
def test_crash_during_open(target):
    fault = FaultPlan([FaultSpec(target, on="open", at=1)])
    rows, crashed = run_with_crash_recovery(fault)
    assert crashed
    assert rows == EXPECTED


@pytest.mark.timeout(120)
def test_fault_free_sweep_baseline():
    """The driver itself is transparent when nothing crashes."""
    rows, crashed = run_with_crash_recovery(FaultPlan())
    assert not crashed
    assert rows == EXPECTED
