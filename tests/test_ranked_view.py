"""Unit tests for materialized ranked views."""

import pytest

from repro.common.errors import ExecutionError
from repro.data.generators import generate_ranked_table
from repro.optimizer.expressions import ScoreExpression
from repro.ranking.ranked_view import RankedJoinView


def make_view(n=200, capacity=50, seed=0, selectivity=0.05):
    left = generate_ranked_table("L", n, selectivity=selectivity,
                                 seed=seed)
    right = generate_ranked_table("R", n, selectivity=selectivity,
                                  seed=seed + 1)
    scoring = ScoreExpression({"L.score": 1.0, "R.score": 1.0})
    view = RankedJoinView(left, right, "L.key", "R.key", scoring,
                          capacity=capacity)
    return view, left, right, scoring


def brute_scores(left, right, k):
    scores = sorted(
        (
            l["L.score"] + r["R.score"]
            for l in left.scan()
            for r in right.scan()
            if l["L.key"] == r["R.key"]
        ),
        reverse=True,
    )
    return [round(v, 9) for v in scores[:k]]


class TestBuildAndQuery:
    def test_topk_matches_brute_force(self):
        view, left, right, _scoring = make_view()
        view.build()
        got = [round(score, 9) for score, _row in view.top_k(10)]
        assert got == brute_scores(left, right, 10)

    def test_capacity_caps_materialization(self):
        view, _l, _r, _s = make_view(capacity=20)
        size = view.build()
        assert size <= 20

    def test_k_beyond_capacity_rejected(self):
        view, _l, _r, _s = make_view(capacity=5)
        view.build()
        with pytest.raises(ExecutionError, match="capacity"):
            view.top_k(6)

    def test_unbounded_capacity(self):
        view, left, right, _s = make_view(n=40, capacity=None,
                                          selectivity=0.2)
        size = view.build()
        assert size == len(brute_scores(left, right, 10 ** 9))

    def test_query_before_build_rejected(self):
        view, _l, _r, _s = make_view()
        with pytest.raises(ExecutionError, match="stale"):
            view.top_k(1)


class TestCompatibility:
    def test_rescaled_function_supported(self):
        view, _l, _r, _s = make_view()
        view.build()
        scaled = ScoreExpression({"L.score": 0.5, "R.score": 0.5})
        assert view.supports(scaled)
        original = view.top_k(5)
        rescaled = view.top_k(5, scoring=scaled)
        for (score_a, _ra), (score_b, _rb) in zip(original, rescaled):
            assert score_b == pytest.approx(score_a * 0.5)

    def test_incompatible_function_rejected(self):
        view, _l, _r, _s = make_view()
        view.build()
        skewed = ScoreExpression({"L.score": 0.9, "R.score": 0.1})
        assert not view.supports(skewed)
        with pytest.raises(ExecutionError, match="cannot answer"):
            view.top_k(5, scoring=skewed)


class TestMaintenance:
    def test_staleness_on_insert(self):
        view, left, _r, _s = make_view()
        view.build()
        assert view.is_fresh
        left.insert([9999, 0, 0.99])
        assert not view.is_fresh

    def test_refresh_if_stale(self):
        view, left, _r, _s = make_view()
        view.build()
        assert not view.refresh_if_stale()  # Fresh: no rebuild.
        left.insert([9999, 0, 0.99])
        assert view.refresh_if_stale()
        assert view.builds == 2
        assert view.is_fresh

    def test_refreshed_view_sees_new_top(self):
        view, left, right, _s = make_view(n=50, selectivity=0.5)
        view.build()
        # Insert an unbeatable pair.
        left.insert([9998, 0, 99.0])
        right.insert([9998, 0, 99.0])
        view.refresh_if_stale()
        top_score, _row = view.top_k(1)[0]
        assert top_score == pytest.approx(198.0)
