"""Unit tests for the empirical (distribution-free) depth estimator."""

import pytest

from repro.common.errors import EstimationError
from repro.data.generators import generate_ranked_table
from repro.estimation.depths import top_k_depths
from repro.estimation.empirical import ScoreProfile, empirical_top_k_depths
from repro.experiments.harness import realized_selectivity
from repro.operators.hrjn import HRJN
from repro.operators.scan import IndexScan
from repro.operators.topk import Limit


class TestScoreProfile:
    def test_delta_profile(self):
        profile = ScoreProfile([1.0, 0.8, 0.5, 0.5, 0.1])
        assert profile.delta(1) == 0.0
        assert profile.delta(2) == pytest.approx(0.2)
        assert profile.delta(5) == pytest.approx(0.9)

    def test_depth_for_gap_inverse(self):
        profile = ScoreProfile([1.0, 0.8, 0.5, 0.1])
        assert profile.depth_for_gap(0.0) == 1.0
        assert profile.depth_for_gap(0.2) == 2.0
        assert profile.depth_for_gap(0.3) == 3.0
        assert profile.depth_for_gap(10.0) == 4.0  # Clamped at size.

    def test_rejects_increasing_scores(self):
        with pytest.raises(EstimationError, match="non-increasing"):
            ScoreProfile([0.1, 0.9])

    def test_rejects_empty(self):
        with pytest.raises(EstimationError):
            ScoreProfile([])

    def test_sampled_prefix_extrapolates(self):
        profile = ScoreProfile([1.0, 0.9, 0.8], total=100)
        assert len(profile) == 100
        assert profile.delta(50) > profile.delta(3)

    def test_from_index(self):
        table = generate_ranked_table("L", 50, seed=1)
        profile = ScoreProfile.from_index(table.get_index("L_score_idx"))
        assert len(profile) == 50
        assert profile.delta(50) > 0

    def test_from_index_prefix(self):
        table = generate_ranked_table("L", 50, seed=2)
        profile = ScoreProfile.from_index(
            table.get_index("L_score_idx"), prefix=10,
        )
        assert len(profile) == 50  # Total preserved.


class TestEmpiricalDepths:
    def measure(self, distribution, k=40, n=4000, seed=51):
        left = generate_ranked_table(
            "L", n, selectivity=0.01, distribution=distribution,
            seed=seed,
        )
        right = generate_ranked_table(
            "R", n, selectivity=0.01, distribution=distribution,
            seed=seed + 1,
        )
        s = realized_selectivity(left, right, "L.key", "R.key")
        rank_join = HRJN(
            IndexScan(left, left.get_index("L_score_idx")),
            IndexScan(right, right.get_index("R_score_idx")),
            "L.key", "R.key", "L.score", "R.score", name="RJ",
        )
        list(Limit(rank_join, k))
        actual = sum(rank_join.depths) / 2.0
        estimate = empirical_top_k_depths(
            ScoreProfile.from_index(left.get_index("L_score_idx")),
            ScoreProfile.from_index(right.get_index("R_score_idx")),
            k, s,
        )
        return actual, estimate, s, k

    def test_uniform_matches_closed_form_regime(self):
        actual, estimate, s, k = self.measure("uniform")
        closed = top_k_depths(k, s)
        # Empirical and closed-form worst cases agree within ~40% on
        # the closed form's home distribution.
        assert estimate.d_left == pytest.approx(closed.d_left, rel=0.4)
        # And the estimate brackets the measurement from above-ish.
        assert estimate.d_left >= actual * 0.6

    def test_zipf_estimate_usable(self):
        """Where the closed form misses by >10x, the empirical
        estimate stays within a small factor of the measurement.

        Error is measured as |log(estimate/actual)| -- a 10x
        *under*-estimate is as bad for costing as a 10x over-estimate,
        which plain relative error hides.
        """
        import math

        actual, estimate, s, k = self.measure("zipf")
        closed = top_k_depths(k, s)
        closed_error = abs(math.log(closed.d_left / actual))
        empirical_error = abs(math.log(estimate.d_left / actual))
        assert empirical_error < closed_error
        assert 0.3 * actual <= estimate.d_left <= 3.0 * actual

    def test_theorem_one_respected(self):
        _actual, estimate, s, k = self.measure("uniform", seed=77)
        assert s * estimate.c_left * estimate.c_right >= k * 0.95

    def test_infeasible_k_reads_everything(self):
        profile = ScoreProfile([1.0, 0.5, 0.2])
        estimate = empirical_top_k_depths(profile, profile, 100, 0.5)
        assert estimate.d_left == 3.0
        assert estimate.clamped

    def test_invalid_inputs(self):
        profile = ScoreProfile([1.0, 0.5])
        with pytest.raises(EstimationError):
            empirical_top_k_depths(profile, profile, 0, 0.5)
        with pytest.raises(EstimationError):
            empirical_top_k_depths(profile, profile, 1, 0.0)
