"""Exporters and end-to-end telemetry for a traced 3-way rank join."""

import json

import pytest

from repro.common.rng import make_rng
from repro.executor.database import Database
from repro.observability import Telemetry
from repro.observability.export import (
    estimate_accuracy,
    format_accuracy,
    to_jsonl,
    to_prometheus,
)
from repro.optimizer.enumerator import OptimizerConfig
from repro.optimizer.plans import RankJoinPlan

THREE_WAY_SQL = """
WITH R AS (
  SELECT A.c1 AS x, rank() OVER (ORDER BY (A.c1 + B.c1 + C.c1)) AS rank
  FROM A, B, C WHERE A.c2 = B.c2 AND B.c2 = C.c2)
SELECT x, rank FROM R WHERE rank <= 5
"""


def make_three_way_db(rows=400, domain=15, seed=7):
    rng = make_rng(seed)
    db = Database(config=OptimizerConfig(enable_nrjn=False))
    for name in ("A", "B", "C"):
        db.create_table(
            name, [("c1", "float"), ("c2", "int")],
            rows=[[float(rng.uniform(0, 1)), int(rng.integers(0, domain))]
                  for _ in range(rows)],
        )
    db.analyze()
    return db


@pytest.fixture(scope="module")
def traced_report():
    return make_three_way_db().execute(THREE_WAY_SQL, trace=True)


class TestTracedExecution:
    def test_rows_and_plan_shape(self, traced_report):
        assert len(traced_report.rows) == 5
        assert isinstance(traced_report.best_plan, RankJoinPlan)

    def test_span_tree_covers_lifecycle(self, traced_report):
        tracer = traced_report.telemetry.tracer
        (execute,) = tracer.spans
        assert execute.name == "execute"
        phases = [child.name for child in execute.children]
        assert phases == ["optimize", "build", "open", "next", "close"]
        # Per-operator spans nest under the executor open/close phases.
        open_phase = execute.find("open")
        assert any(span.attributes.get("operator")
                   for span in open_phase.walk() if span is not open_phase)

    def test_metrics_match_snapshots(self, traced_report):
        metrics = traced_report.telemetry.metrics
        pulls = metrics.counter("operator_pulls")
        rows_out = metrics.counter("operator_rows_out")
        for snap in traced_report.operators:
            assert rows_out.value(operator=snap.description) == snap.rows_out
            for index, pulled in enumerate(snap.pulled):
                assert pulls.value(
                    operator=snap.description, input=index) == pulled

    def test_per_operator_timing_collected(self, traced_report):
        assert traced_report.timed
        for snap in traced_report.operators:
            assert snap.total_time_ns > 0

    def test_optimizer_events_recorded(self, traced_report):
        events = traced_report.telemetry.events
        assert events.count("memo_insert") > 0
        assert events.count("plan_pruned") > 0
        assert events.count("propagate_depth") > 0
        retained = traced_report.telemetry.metrics.counter(
            "optimizer_plans_retained")
        assert retained.total() == events.count("memo_insert")

    def test_pipelining_exemption_events(self, traced_report):
        events = traced_report.telemetry.events
        exemptions = events.events("pipelining_exemption")
        assert exemptions  # Rank-join plans survive cheaper sort plans.
        for event in exemptions:
            assert "kept" in event.attributes
            assert "against" in event.attributes

    def test_memo_gauges(self, traced_report):
        metrics = traced_report.telemetry.metrics
        assert metrics.gauge("memo_entries").value() == 6  # A,B,C,AB,BC,ABC
        assert metrics.gauge("memo_order_classes").value() > 0


class TestEstimateAccuracy:
    def test_depths_match_propagate_output(self, traced_report):
        """Acceptance: estimated depths == propagate_depths output."""
        rows = traced_report.estimate_accuracy()
        root_plan = traced_report.best_plan
        expected = {
            id(plan): estimate
            for plan, _required, estimate in root_plan.propagate_depths(5)
            if estimate is not None
        }
        plan_of = {snap.description: snap.plan
                   for snap in traced_report.operators}
        rank_rows = [row for row in rows if row["kind"] == "rank_join"]
        assert len(rank_rows) == len(expected) == 2  # 3-way: two joins
        for row in rank_rows:
            estimate = expected[id(plan_of[row["operator"]])]
            assert row["est_d_left"] == estimate.d_left
            assert row["est_d_right"] == estimate.d_right

    def test_actuals_match_snapshots(self, traced_report):
        by_operator = {row["operator"]: row
                       for row in traced_report.estimate_accuracy()}
        for snap in traced_report.operators:
            row = by_operator.get(snap.description)
            if row is None or row["kind"] != "rank_join":
                continue
            assert row["actual_d_left"] == snap.pulled[0]
            assert row["actual_d_right"] == snap.pulled[1]
            assert row["actual_buffer"] == snap.max_buffer

    def test_input_rows_carry_required_depths(self, traced_report):
        rows = traced_report.estimate_accuracy()
        inputs = [row for row in rows if row["kind"] == "input"]
        assert len(inputs) == 3  # Three ranked base inputs.
        for row in inputs:
            assert row["est_depth"] > 0
            assert row["actual_depth"] > 0

    def test_format_accuracy_text(self, traced_report):
        text = format_accuracy(traced_report.estimate_accuracy())
        assert text.startswith("estimate accuracy:")
        assert "est depth=" in text
        assert "est buffer<=" in text

    def test_format_accuracy_empty(self):
        assert "no plan-bound operators" in format_accuracy([])

    def test_non_rank_join_report_has_plan_rows(self):
        db = make_three_way_db()
        report = db.execute(
            "SELECT A.c1, B.c1 FROM A, B WHERE A.c2 = B.c2")
        rows = estimate_accuracy(report)
        assert rows
        assert all(row["kind"] == "plan" for row in rows)


class TestExporters:
    def test_jsonl_every_line_parses(self, traced_report):
        payload = to_jsonl(traced_report.telemetry)
        lines = payload.strip().splitlines()
        assert lines
        parsed = [json.loads(line) for line in lines]
        types = {entry["type"] for entry in parsed}
        assert types == {"span", "metric", "event"}

    def test_jsonl_empty_telemetry(self):
        assert to_jsonl(Telemetry()) == ""

    def test_prometheus_format(self, traced_report):
        text = to_prometheus(traced_report.telemetry.metrics)
        assert "# TYPE operator_pulls counter" in text
        assert "# TYPE memo_entries gauge" in text
        # Sample lines are name{labels} value.
        for line in text.strip().splitlines():
            if line.startswith("#"):
                continue
            name_part, value = line.rsplit(" ", 1)
            assert name_part
            float(value)  # Parses as a number.

    def test_prometheus_histogram_rendering(self):
        from repro.observability.metrics import MetricsRegistry

        registry = MetricsRegistry()
        histogram = registry.histogram("lat", buckets=(1.0, 10.0))
        histogram.observe(0.5, op="x")
        histogram.observe(5.0, op="x")
        text = to_prometheus(registry)
        assert 'lat_bucket{le="1.0",op="x"} 1' in text
        assert 'lat_bucket{le="10.0",op="x"} 2' in text
        assert 'lat_bucket{le="+Inf",op="x"} 2' in text
        assert 'lat_count{op="x"} 2' in text

    def test_prometheus_label_escaping(self):
        from repro.observability.metrics import MetricsRegistry

        registry = MetricsRegistry()
        registry.counter("c").inc(op='say "hi"\nthere')
        text = to_prometheus(registry)
        assert r'\"hi\"' in text
        assert r"\n" in text
