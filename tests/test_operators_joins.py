"""Unit tests for traditional join operators."""

import pytest

from repro.common.errors import ExecutionError
from repro.common.rng import make_rng
from repro.operators.joins import (
    HashJoin,
    IndexNestedLoopsJoin,
    NestedLoopsJoin,
    RankedInput,
    SymmetricHashJoin,
)
from repro.operators.base import ScoreSpec
from repro.operators.scan import TableScan
from repro.common.types import Row
from repro.storage.table import Table


def make_pair(left_keys, right_keys):
    left = Table.from_columns("L", [("id", "int"), ("k", "int")])
    for i, key in enumerate(left_keys):
        left.insert([i, key])
    right = Table.from_columns("R", [("id", "int"), ("k", "int")])
    for i, key in enumerate(right_keys):
        right.insert([i, key])
    return left, right


def expected_pairs(left_keys, right_keys):
    return sorted(
        (li, ri)
        for li, lk in enumerate(left_keys)
        for ri, rk in enumerate(right_keys)
        if lk == rk
    )


def result_pairs(operator):
    return sorted((r["L.id"], r["R.id"]) for r in operator)


JOIN_FACTORIES = [
    lambda l, r: NestedLoopsJoin(TableScan(l), TableScan(r), "L.k", "R.k"),
    lambda l, r: IndexNestedLoopsJoin(
        TableScan(l), TableScan(r), "L.k", "R.k"),
    lambda l, r: HashJoin(TableScan(l), TableScan(r), "L.k", "R.k"),
    lambda l, r: SymmetricHashJoin(
        TableScan(l), TableScan(r), "L.k", "R.k"),
]

JOIN_IDS = ["nl", "inl", "hash", "symmetric"]


@pytest.mark.parametrize("factory", JOIN_FACTORIES, ids=JOIN_IDS)
class TestJoinCorrectness:
    def test_simple_equi_join(self, factory):
        left_keys = [1, 2, 3, 2]
        right_keys = [2, 2, 4]
        left, right = make_pair(left_keys, right_keys)
        assert result_pairs(factory(left, right)) == expected_pairs(
            left_keys, right_keys,
        )

    def test_empty_left(self, factory):
        left, right = make_pair([], [1, 2])
        assert result_pairs(factory(left, right)) == []

    def test_empty_right(self, factory):
        left, right = make_pair([1, 2], [])
        assert result_pairs(factory(left, right)) == []

    def test_no_matches(self, factory):
        left, right = make_pair([1, 2], [3, 4])
        assert result_pairs(factory(left, right)) == []

    def test_random_agreement(self, factory):
        rng = make_rng(77)
        left_keys = [int(k) for k in rng.integers(0, 7, 40)]
        right_keys = [int(k) for k in rng.integers(0, 7, 35)]
        left, right = make_pair(left_keys, right_keys)
        assert result_pairs(factory(left, right)) == expected_pairs(
            left_keys, right_keys,
        )


class TestJoinDetails:
    def test_merged_row_contents(self):
        left, right = make_pair([5], [5])
        row = next(iter(HashJoin(
            TableScan(left), TableScan(right), "L.k", "R.k",
        )))
        assert row["L.k"] == 5 and row["R.k"] == 5

    def test_callable_keys(self):
        left, right = make_pair([2], [4])
        join = HashJoin(
            TableScan(left), TableScan(right),
            lambda r: r["L.k"] * 2, lambda r: r["R.k"],
        )
        assert len(list(join)) == 1

    def test_invalid_key_spec(self):
        left, right = make_pair([1], [1])
        with pytest.raises(ExecutionError):
            HashJoin(TableScan(left), TableScan(right), 42, "R.k")

    def test_symmetric_join_is_incremental(self):
        """Symmetric hash join emits without exhausting either side."""
        left, right = make_pair([1, 2, 3], [1, 2, 3])
        join = SymmetricHashJoin(
            TableScan(left), TableScan(right), "L.k", "R.k",
        )
        join.open()
        first = join.next()
        assert first is not None
        assert join.stats.pulled[0] + join.stats.pulled[1] < 6
        join.close()

    def test_nl_inner_pull_count(self):
        left, right = make_pair([1, 1], [1, 2, 3])
        join = NestedLoopsJoin(
            TableScan(left), TableScan(right), "L.k", "R.k",
        )
        list(join)
        assert join.stats.pulled[1] == 3  # Inner materialised once.


class TestRankedInput:
    def test_observes_descending(self):
        ranked = RankedInput(0, ScoreSpec.column("s"))
        ranked.observe(Row({"s": 0.9}))
        ranked.observe(Row({"s": 0.5}))
        assert ranked.top_score == 0.9
        assert ranked.last_score == 0.5

    def test_rejects_ascending(self):
        ranked = RankedInput(0, ScoreSpec.column("s"))
        ranked.observe(Row({"s": 0.5}))
        with pytest.raises(ExecutionError, match="not sorted"):
            ranked.observe(Row({"s": 0.9}))

    def test_requires_score_spec(self):
        with pytest.raises(ExecutionError):
            RankedInput(0, "s")
