"""Unit tests for the rank-join buffer-size bound (Section 5.3)."""

import pytest

from repro.common.errors import EstimationError
from repro.cost.buffer import buffer_upper_bound, estimated_buffer_upper_bound


class TestBufferBound:
    def test_formula(self):
        assert buffer_upper_bound(100, 50, 0.01) == pytest.approx(50.0)

    def test_zero_selectivity(self):
        assert buffer_upper_bound(100, 100, 0.0) == 0.0

    def test_invalid_depths(self):
        with pytest.raises(EstimationError):
            buffer_upper_bound(-1, 10, 0.1)

    def test_invalid_selectivity(self):
        with pytest.raises(EstimationError):
            buffer_upper_bound(10, 10, 1.5)

    def test_estimated_bound_monotone_in_k(self):
        bounds = [
            estimated_buffer_upper_bound(k, 0.01, 10000, 10000)
            for k in (1, 10, 100)
        ]
        assert bounds == sorted(bounds)

    def test_estimated_bound_at_least_k(self):
        """At least k join results must be buffered-or-reported; the
        worst-case bound therefore dominates k."""
        for k in (1, 10, 100):
            bound = estimated_buffer_upper_bound(k, 0.01, 10000, 10000)
            assert bound >= k
