"""Tests for EXPLAIN ANALYZE (estimated vs actual reporting)."""

import pytest

from repro.common.rng import make_rng
from repro.executor.database import Database
from repro.optimizer.enumerator import OptimizerConfig


def make_db(rows=1500, domain=20, seed=9, config=None):
    rng = make_rng(seed)
    db = Database(config=config)
    for name in ("A", "B"):
        db.create_table(
            name, [("c1", "float"), ("c2", "int")],
            rows=[[float(rng.uniform(0, 1)), int(rng.integers(0, domain))]
                  for _ in range(rows)],
        )
    db.analyze()
    return db


SQL = """
WITH R AS (
  SELECT A.c1 AS x, B.c1 AS y,
         rank() OVER (ORDER BY (A.c1 + B.c1)) AS rank
  FROM A, B WHERE A.c2 = B.c2)
SELECT x, y, rank FROM R WHERE rank <= 10
"""


class TestExplainAnalyze:
    def test_report_structure(self):
        report = make_db().execute(SQL)
        text = report.analyze()
        assert text.startswith("explain analyze:")
        assert "actual" in text

    def test_rank_join_depth_comparison_present(self):
        db = make_db(config=OptimizerConfig(enable_nrjn=False))
        report = db.execute(SQL)
        text = report.analyze()
        assert "est depth=" in text
        assert "actual depth=" in text
        assert "pulled=" in text

    def test_estimated_depths_track_actual(self):
        """The reported estimate and measurement agree within the
        model's usual band for the HRJN plan."""
        db = make_db(config=OptimizerConfig(enable_nrjn=False))
        report = db.execute(SQL)
        snap = report.rank_join_snapshots()[0]
        from repro.optimizer.plans import RankJoinPlan

        plan = snap.plan
        assert isinstance(plan, RankJoinPlan)
        estimate = plan.depth_estimate(10)
        actual = sum(snap.pulled) / 2.0
        assert estimate.d_left == pytest.approx(actual, rel=0.8)

    def test_operators_carry_plan_refs(self):
        report = make_db().execute(SQL)
        planned = [snap for snap in report.operators
                   if snap.plan is not None]
        assert planned  # The built tree is annotated.

    def test_hand_built_operators_have_no_plan(self, small_table):
        from repro.operators.scan import TableScan

        scan = TableScan(small_table)
        assert scan.plan is None
