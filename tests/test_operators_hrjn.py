"""Unit tests for HRJN -- the hash rank-join operator."""

import pytest

from repro.common.errors import ExecutionError
from repro.common.rng import make_rng
from repro.common.scoring import WeightedSum
from repro.data.generators import generate_ranked_table
from repro.operators.hrjn import HRJN
from repro.operators.scan import IndexScan, TableScan
from repro.operators.sort import Sort
from repro.operators.topk import Limit, TopK
from repro.operators.joins import HashJoin
from repro.storage.index import SortedIndex
from repro.storage.table import Table


def ranked_pair(n=200, selectivity=0.05, seed=0):
    left = generate_ranked_table("L", n, selectivity=selectivity, seed=seed)
    right = generate_ranked_table(
        "R", n, selectivity=selectivity, seed=seed + 1,
    )
    return left, right


def hrjn_over(left, right, **kwargs):
    return HRJN(
        IndexScan(left, left.get_index("L_score_idx")),
        IndexScan(right, right.get_index("R_score_idx")),
        "L.key", "R.key", "L.score", "R.score", name="RJ", **kwargs,
    )


def baseline_scores(left, right, k, combiner=None):
    join = HashJoin(TableScan(left), TableScan(right), "L.key", "R.key")
    if combiner is None:
        key = lambda r: r["L.score"] + r["R.score"]
    else:
        key = lambda r: combiner((r["L.score"], r["R.score"]))
    top = TopK(join, k, key, description="combined")
    return [round(key(r), 9) for r in top]


class TestCorrectness:
    def test_top_k_matches_join_then_sort(self):
        left, right = ranked_pair()
        rows = list(Limit(hrjn_over(left, right), 10))
        got = [round(r["_score_RJ"], 9) for r in rows]
        assert got == baseline_scores(left, right, 10)

    def test_scores_non_increasing(self):
        left, right = ranked_pair(seed=3)
        scores = [r["_score_RJ"] for r in Limit(hrjn_over(left, right), 25)]
        assert all(a >= b - 1e-12 for a, b in zip(scores, scores[1:]))

    def test_full_drain_equals_full_join(self):
        left, right = ranked_pair(n=60, selectivity=0.2, seed=4)
        rank_rows = list(hrjn_over(left, right))
        join_rows = list(HashJoin(
            TableScan(left), TableScan(right), "L.key", "R.key",
        ))
        assert len(rank_rows) == len(join_rows)

    def test_weighted_combiner(self):
        left, right = ranked_pair(seed=5)
        combiner = WeightedSum([0.3, 0.7])
        rows = list(Limit(hrjn_over(left, right, combiner=combiner), 8))
        got = [round(r["_score_RJ"], 9) for r in rows]
        assert got == baseline_scores(left, right, 8, combiner=combiner)

    def test_empty_inputs(self):
        left = generate_ranked_table("L", 0, seed=1)
        right = generate_ranked_table("R", 0, seed=2)
        assert list(hrjn_over(left, right)) == []

    def test_one_empty_input(self):
        left = generate_ranked_table("L", 10, seed=1)
        right = generate_ranked_table("R", 0, seed=2)
        assert list(hrjn_over(left, right)) == []

    @pytest.mark.parametrize("strategy", ["alternate", "threshold",
                                          "left", "right"])
    def test_all_strategies_agree(self, strategy):
        left, right = ranked_pair(seed=6)
        rows = list(Limit(hrjn_over(left, right, strategy=strategy), 10))
        got = [round(r["_score_RJ"], 9) for r in rows]
        assert got == baseline_scores(left, right, 10)


class TestEarlyOut:
    def test_depth_well_below_input_size(self):
        left, right = ranked_pair(n=2000, selectivity=0.05, seed=7)
        rank_join = hrjn_over(left, right)
        list(Limit(rank_join, 5))
        d_left, d_right = rank_join.depths
        assert d_left < 300 and d_right < 300

    def test_depth_monotone_in_k(self):
        left, right = ranked_pair(n=2000, selectivity=0.05, seed=8)
        depths = []
        for k in (5, 20, 80):
            rank_join = hrjn_over(left, right)
            list(Limit(rank_join, k))
            depths.append(sum(rank_join.depths))
        assert depths == sorted(depths)

    def test_threshold_strategy_not_worse_total(self):
        left, right = ranked_pair(n=2000, selectivity=0.05, seed=9)
        rj_alt = hrjn_over(left, right, strategy="alternate")
        list(Limit(rj_alt, 20))
        rj_thr = hrjn_over(left, right, strategy="threshold")
        list(Limit(rj_thr, 20))
        assert sum(rj_thr.depths) <= sum(rj_alt.depths) + 10


class TestThreshold:
    def test_threshold_unbounded_before_first_pull(self):
        left, right = ranked_pair(seed=10)
        rank_join = hrjn_over(left, right)
        rank_join.open()
        assert rank_join.threshold() is None
        rank_join.close()

    def test_threshold_decreases(self):
        left, right = ranked_pair(seed=11)
        rank_join = hrjn_over(left, right)
        thresholds = []
        rank_join.open()
        for _ in range(15):
            if rank_join.next() is None:
                break
            t = rank_join.threshold()
            if t is not None:
                thresholds.append(t)
        rank_join.close()
        assert all(a >= b - 1e-9 for a, b in zip(thresholds, thresholds[1:]))

    def test_emitted_scores_at_least_threshold_at_emit(self):
        left, right = ranked_pair(seed=12)
        rank_join = hrjn_over(left, right)
        rank_join.open()
        for _ in range(10):
            row = rank_join.next()
            if row is None:
                break
            threshold = rank_join.threshold()
            assert row["_score_RJ"] >= threshold - 1e-9
        rank_join.close()


class TestValidation:
    def test_unsorted_input_detected(self):
        left = Table.from_columns("L", [("key", "int"), ("score", "float")])
        for score in (0.1, 0.9):  # Ascending heap order.
            left.insert([1, score])
        right = generate_ranked_table("R", 10, seed=1)
        rank_join = HRJN(
            TableScan(left),
            IndexScan(right, right.get_index("R_score_idx")),
            "L.key", "R.key", "L.score", "R.score", strategy="left",
        )
        with pytest.raises(ExecutionError, match="not sorted"):
            list(rank_join)

    def test_unknown_strategy_rejected(self):
        left, right = ranked_pair(seed=13)
        with pytest.raises(ExecutionError, match="strategy"):
            hrjn_over(left, right, strategy="bogus")

    def test_non_monotone_combiner_rejected(self):
        left, right = ranked_pair(seed=14)
        with pytest.raises(ExecutionError, match="MonotoneScore"):
            hrjn_over(left, right, combiner=sum)

    def test_output_schema_contains_score_column(self):
        left, right = ranked_pair(seed=15)
        rank_join = hrjn_over(left, right)
        assert "_score_RJ" in rank_join.schema


class TestChaining:
    def test_hrjn_feeding_hrjn(self):
        """A pipeline of two HRJNs produces the correct 3-way top-k."""
        rng = make_rng(16)
        tables = []
        for name in ("X", "Y", "Z"):
            table = Table.from_columns(
                name, [("key", "int"), ("score", "float")],
            )
            for _ in range(80):
                table.insert([
                    int(rng.integers(0, 6)), float(rng.uniform(0, 1)),
                ])
            table.create_index(
                SortedIndex("%s_idx" % name, "%s.score" % name),
            )
            tables.append(table)
        x, y, z = tables
        inner = HRJN(
            IndexScan(x, x.get_index("X_idx")),
            IndexScan(y, y.get_index("Y_idx")),
            "X.key", "Y.key", "X.score", "Y.score", name="RJ1",
            output_score_column="_s1",
        )
        outer = HRJN(
            inner, IndexScan(z, z.get_index("Z_idx")),
            "Y.key", "Z.key", "_s1", "Z.score", name="RJ2",
            output_score_column="_s2",
        )
        got = [round(r["_s2"], 9) for r in Limit(outer, 10)]

        truth = []
        for rx in x.scan():
            for ry in y.scan():
                if rx["X.key"] != ry["Y.key"]:
                    continue
                for rz in z.scan():
                    if ry["Y.key"] != rz["Z.key"]:
                        continue
                    truth.append(
                        rx["X.score"] + ry["Y.score"] + rz["Z.score"],
                    )
        truth.sort(reverse=True)
        assert got == [round(v, 9) for v in truth[:10]]
