"""State-preserving recovery: resume, suspend, and migrate paths.

Exercises the checkpoint-aware ``GuardedExecutor`` on the Figure 6
workload (``0.3*A.c1 + 0.7*B.c2``, ``rank <= 5``): a transient fault
resumes from the last checkpoint instead of rerunning, a budget breach
suspends into a resumable handle, and a fallback decision migrates the
live rank-join state instead of rebuilding the sort plan.
"""

import pytest

from repro.common.errors import (
    BudgetExceededError,
    CheckpointError,
    TransientFaultError,
)
from repro.common.rng import make_rng
from repro.executor.database import Database
from repro.optimizer.enumerator import OptimizerConfig
from repro.robustness.budget import ResourceBudget
from repro.robustness.checkpoint import (
    CheckpointManager,
    CheckpointPolicy,
)
from repro.robustness.faults import FaultPlan, FaultSpec
from repro.robustness.recovery import RecoveryPolicy

SQL = """
WITH Ranked AS (
  SELECT A.c1 AS x, B.c2 AS y,
         rank() OVER (ORDER BY (0.3*A.c1 + 0.7*B.c2)) AS rank
  FROM A, B WHERE A.c2 = B.c1)
SELECT x, y, rank FROM Ranked WHERE rank <= 5
"""


def make_db(rows=400, seed=3, domain=15, hrjn_only=False):
    rng = make_rng(seed)
    # NRJN materialises its whole inner inside open() -- one atomic
    # step no budget can split -- so tests that need incremental
    # progress per budget instalment pin the fully pipelined HRJN.
    config = (OptimizerConfig(enable_nrjn=False) if hrjn_only else None)
    db = Database(config=config)
    db.create_table("A", [("c1", "float"), ("c2", "int")], rows=[
        [float(rng.uniform(0, 1)), int(rng.integers(0, domain))]
        for _ in range(rows)
    ])
    db.create_table("B", [("c1", "int"), ("c2", "float")], rows=[
        [int(rng.integers(0, domain)), float(rng.uniform(0, 1))]
        for _ in range(rows)
    ])
    db.analyze()
    return db


def rank_join_faults(**kwargs):
    """A fault plan targeting whichever rank join the optimizer picked."""
    return FaultPlan([FaultSpec(
        target=lambda op: op.name.startswith(("HRJN", "NRJN", "MHRJN")),
        **kwargs,
    )])


class TestPolicyValidation:
    def test_rejects_bad_parameters(self):
        from repro.common.errors import ExecutionError

        with pytest.raises(ExecutionError):
            CheckpointPolicy(every_rows=0)
        with pytest.raises(ExecutionError):
            CheckpointPolicy(pressure_threshold=1.5)
        with pytest.raises(ExecutionError):
            CheckpointPolicy(max_resumes=-1)

    def test_restore_without_checkpoint_raises(self):
        manager = CheckpointManager(root=None)
        with pytest.raises(CheckpointError):
            manager.restore()


class TestTransientFaultResume:
    def test_resume_matches_fault_free_run(self):
        clean = make_db().execute_guarded(SQL)
        db = make_db()
        report = db.execute_guarded(
            SQL, checkpoint=2,
            faults=rank_join_faults(on="next", at=4, transient=True),
        )
        assert report.rows == clean.rows
        assert report.recovery.path == "resumed"
        assert report.recovery.stats["resumes"] == 1

    def test_resume_pulls_strictly_fewer_than_rerun(self):
        """The acceptance bar: continuing from the checkpoint costs
        strictly fewer pulls than starting the query over."""
        clean = make_db().execute_guarded(SQL)
        clean_pulls = clean.recovery.stats["pulled_total"]
        db = make_db()
        report = db.execute_guarded(
            SQL, checkpoint=2,
            faults=rank_join_faults(on="next", at=4, transient=True),
        )
        stats = report.recovery.stats
        continuation = stats["pulled_total"] - stats["pulled_at_resume"]
        assert continuation < clean_pulls
        assert report.rows == clean.rows

    def test_without_checkpoint_transient_fault_propagates(self):
        db = make_db()
        with pytest.raises(TransientFaultError):
            db.execute_guarded(
                SQL, faults=rank_join_faults(on="next", at=4,
                                             transient=True),
            )

    def test_resume_budget_exhaustion_reraises(self):
        db = make_db()
        with pytest.raises(TransientFaultError):
            db.execute_guarded(
                SQL,
                checkpoint=CheckpointPolicy(every_rows=2, max_resumes=2),
                faults=rank_join_faults(on="next", at=4, times=500,
                                        transient=True),
            )


class TestSuspendResume:
    def test_budget_breach_suspends_instead_of_raising(self):
        db = make_db()
        report = db.execute_guarded(
            SQL, budget=ResourceBudget(max_pulls=100), checkpoint=2,
        )
        assert report.suspended
        assert report.recovery.path == "suspended"
        assert "pull budget" in report.suspension.reason
        if report.suspension.pre_open:
            # The breach fired inside an atomic open() (NRJN inner
            # materialisation): nothing was delivered and nothing is
            # checkpointed -- resume restarts from scratch.
            assert report.suspension.checkpoint is None
            assert report.rows == []
        else:
            assert report.rows == report.suspension.checkpoint.rows

    def test_resume_completes_the_query_exactly(self):
        clean = make_db().execute_guarded(SQL)
        db = make_db()
        first = db.execute_guarded(
            SQL, budget=ResourceBudget(max_pulls=100), checkpoint=2,
        )
        assert first.suspended
        # The delivered prefix is already correct.
        assert first.rows == clean.rows[:len(first.rows)]
        resumed = db.resume(first.suspension, budget=ResourceBudget())
        assert resumed.rows == clean.rows
        assert not resumed.suspended
        assert resumed.recovery.path == "resumed"

    def test_resume_can_suspend_again_under_a_tight_budget(self):
        """An HRJN query finishes in budget instalments, each hop
        resuming the previous hop's checkpoint."""
        clean = make_db(hrjn_only=True).execute_guarded(SQL)
        db = make_db(hrjn_only=True)
        report = db.execute_guarded(
            SQL, budget=ResourceBudget(max_pulls=15), checkpoint=2,
        )
        assert report.suspended
        hops = 1
        while report.suspended:
            report = db.resume(report.suspension,
                               budget=ResourceBudget(max_pulls=15))
            hops += 1
            assert hops < 20, "query never finished"
        assert hops > 1
        assert report.rows == clean.rows

    def test_suspend_disabled_still_raises(self):
        db = make_db()
        with pytest.raises(BudgetExceededError):
            db.execute_guarded(
                SQL, budget=ResourceBudget(max_pulls=100),
                checkpoint=CheckpointPolicy(every_rows=2,
                                            suspend_on_budget=False),
            )

    def test_breach_kind_recorded(self):
        db = make_db()
        with pytest.raises(BudgetExceededError) as info:
            db.execute_guarded(SQL, budget=ResourceBudget(max_pulls=5))
        assert info.value.kind == "pulls"


class TestPreOpenSuspension:
    """NRJN's atomic open: suspension must be safe, not half-broken.

    NRJN materialises its whole inner inside ``open()``.  A budget
    breach mid-open used to checkpoint the unopened tree (whose stats
    already carried the aborted open's pulls) -- a restore from that
    snapshot double-counted depth accounting.  The fix rejects
    checkpointing pre-open: the suspension carries no checkpoint and a
    resume restarts the query cleanly under the new budget.
    """

    def _nrjn_db(self, **kwargs):
        rng = make_rng(3)
        db = Database(config=OptimizerConfig(enable_hrjn=False))
        db.create_table("A", [("c1", "float"), ("c2", "int")], rows=[
            [float(rng.uniform(0, 1)), int(rng.integers(0, 15))]
            for _ in range(400)
        ])
        db.create_table("B", [("c1", "int"), ("c2", "float")], rows=[
            [int(rng.integers(0, 15)), float(rng.uniform(0, 1))]
            for _ in range(400)
        ])
        db.analyze()
        return db

    def test_breach_during_open_suspends_without_checkpoint(self):
        db = self._nrjn_db()
        report = db.execute_guarded(
            SQL, budget=ResourceBudget(max_pulls=50), checkpoint=2,
        )
        assert report.suspended
        suspension = report.suspension
        assert suspension.pre_open
        assert suspension.checkpoint is None
        assert suspension.rows_delivered == 0
        assert report.rows == []
        assert "pre-open" in report.recovery.events[0].detail

    def test_pre_open_resume_restarts_and_matches_clean_run(self):
        clean = self._nrjn_db().execute_guarded(SQL)
        db = self._nrjn_db()
        first = db.execute_guarded(
            SQL, budget=ResourceBudget(max_pulls=50), checkpoint=2,
        )
        assert first.suspension.pre_open
        resumed = db.resume(first.suspension, budget=ResourceBudget())
        assert not resumed.suspended
        assert resumed.rows == clean.rows

    def test_too_small_instalments_do_not_livelock_forever(self):
        """Escalating budgets clear the atomic open; identical tiny
        budgets would livelock, which callers detect via ``pre_open``
        never flipping off."""
        db = self._nrjn_db()
        report = db.execute_guarded(
            SQL, budget=ResourceBudget(max_pulls=50), checkpoint=2,
        )
        budget = 50
        hops = 0
        while report.suspended:
            budget *= 4
            report = db.resume(report.suspension,
                               budget=ResourceBudget(max_pulls=budget))
            hops += 1
            assert hops < 10, "escalating budgets never cleared the open"
        clean = self._nrjn_db().execute_guarded(SQL)
        assert report.rows == clean.rows


class TestMigration:
    def _wrong_selectivity_db(self, factor=4.0):
        db = make_db()
        real = db.catalog.join_selectivity("A", "A.c2", "B", "B.c1")
        db.set_join_selectivity("A.c2", "B.c1", min(1.0, real * factor))
        return db

    _POLICY = RecoveryPolicy(overrun_factor=1.1, min_headroom=4,
                             max_reestimates=0)

    def test_fallback_decision_migrates_live_state(self):
        reference = make_db().execute_guarded(SQL)
        db = self._wrong_selectivity_db()
        report = db.execute_guarded(SQL, policy=self._POLICY, checkpoint=2)
        assert report.recovery.path == "migrated"
        assert report.rows == reference.rows

    def test_migration_cheaper_than_fallback_rerun(self):
        """Migrating never rereads consumed tuples, so it pulls fewer
        than the abandon-and-rerun fallback on the same workload."""
        db = self._wrong_selectivity_db()
        fallback = db.execute_guarded(SQL, policy=self._POLICY)
        assert fallback.recovery.path == "fallback"
        db = self._wrong_selectivity_db()
        migrated = db.execute_guarded(SQL, policy=self._POLICY,
                                      checkpoint=2)
        assert migrated.recovery.path == "migrated"
        assert (migrated.recovery.stats["pulled_total"]
                < fallback.recovery.stats["pulled_total"])
        assert migrated.rows == fallback.rows

    def test_migration_disabled_falls_back(self):
        db = self._wrong_selectivity_db()
        report = db.execute_guarded(
            SQL, policy=self._POLICY,
            checkpoint=CheckpointPolicy(every_rows=2,
                                        migrate_on_fallback=False),
        )
        assert report.recovery.path == "fallback"


class TestMetricsWiring:
    def test_checkpoint_and_resume_counters(self):
        db = make_db()
        report = db.execute_guarded(
            SQL, trace=True, checkpoint=2,
            faults=rank_join_faults(on="next", at=4, transient=True),
        )
        metrics = report.telemetry.metrics
        assert metrics.counter("robustness_checkpoints_total").total() >= 1
        assert metrics.counter("robustness_resumes_total").value(
            kind="in_place") == 1
        assert metrics.counter("robustness_recovery_actions_total").value(
            action="resume") == 1
        assert metrics.counter(
            "robustness_faults_injected_total").total() >= 1

    def test_budget_breach_counter(self):
        db = make_db()
        report = db.execute_guarded(
            SQL, trace=True, budget=ResourceBudget(max_pulls=100),
            checkpoint=2,
        )
        assert report.suspended
        metrics = report.telemetry.metrics
        assert metrics.counter("robustness_budget_breaches_total").value(
            kind="pulls") == 1
        assert metrics.counter("robustness_recovery_actions_total").value(
            action="suspend") == 1

    def test_retry_counters(self):
        from repro.observability.metrics import MetricsRegistry
        from repro.operators.scan import TableScan
        from repro.robustness.faults import (
            FaultyOperator,
            RetryingOperator,
        )

        registry = MetricsRegistry()
        db = make_db(rows=20)
        scan = TableScan(db.catalog.table("A"))
        faulty = FaultyOperator(
            scan, [FaultSpec("Scan(A)", on="next", at=2, times=2,
                             transient=True)],
            metrics=registry,
        )
        retry = RetryingOperator(faulty, max_retries=3, metrics=registry)
        rows = list(retry)
        assert len(rows) == 20
        assert registry.counter("robustness_retries_total").value(
            outcome="attempted", operator="Faulty(Scan(A))") == 2
        assert registry.counter("robustness_retries_total").value(
            outcome="absorbed", operator="Faulty(Scan(A))") == 1
        assert registry.counter("robustness_faults_injected_total").value(
            kind="transient", operator="Scan(A)") == 2


class TestCheckpointEvents:
    def test_events_emitted_into_telemetry(self):
        db = make_db()
        report = db.execute_guarded(
            SQL, trace=True, checkpoint=2,
            faults=rank_join_faults(on="next", at=4, transient=True),
        )
        kinds = report.telemetry.events.kinds()
        assert kinds.get("checkpoint", 0) >= 1
        assert kinds.get("checkpoint_restore", 0) == 1
        assert kinds.get("recovery", 0) >= 1

    def test_recovery_describe_mentions_checkpoints(self):
        db = make_db()
        report = db.execute_guarded(SQL, checkpoint=2)
        text = report.recovery.describe()
        assert "checkpoints: taken=" in text


class TestPressureTrigger:
    def test_budget_pressure_checkpoints_before_breach(self):
        # HRJN only: an NRJN plan would breach inside its atomic open,
        # where there are no delivered rows for pressure to checkpoint.
        db = make_db(hrjn_only=True)
        report = db.execute_guarded(
            SQL, budget=ResourceBudget(max_pulls=60),
            checkpoint=CheckpointPolicy(every_rows=None,
                                        pressure_threshold=0.5),
        )
        # Whether or not the run finishes under the budget, crossing
        # 50% pressure must have produced at least the suspend
        # checkpoint -- and any pressure checkpoints record the reason.
        assert report.recovery.stats["checkpoints"] >= 1
