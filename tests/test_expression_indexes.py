"""Expression indexes: sorted access paths over score *expressions*.

A single-table ranking over several columns (e.g. ``0.5*A.c1 +
0.5*A.c3``) can be served by an index keyed on the expression; the
optimizer matches such indexes through the expression's canonical
description.
"""

import pytest

from repro.common.rng import make_rng
from repro.cost.model import CostModel
from repro.optimizer.builder import PlanBuilder
from repro.optimizer.enumerator import Optimizer, OptimizerConfig
from repro.optimizer.expressions import ScoreExpression
from repro.optimizer.plans import AccessPlan
from repro.optimizer.query import RankQuery
from repro.storage.catalog import Catalog
from repro.storage.index import SortedIndex
from repro.storage.table import Table


def make_catalog(with_expression_index, rows=120, seed=13):
    rng = make_rng(seed)
    table = Table.from_columns(
        "A", [("c1", "float"), ("c3", "float")],
    )
    for _ in range(rows):
        table.insert([float(rng.uniform(0, 1)), float(rng.uniform(0, 1))])
    expression = ScoreExpression({"A.c1": 0.5, "A.c3": 0.5})
    if with_expression_index:
        table.create_index(SortedIndex(
            "A_expr_idx",
            expression.accessor(),
            key_description=expression.description(),
        ))
    catalog = Catalog()
    catalog.register(table)
    catalog.analyze()
    return catalog, expression


def single_table_query(expression, k=5):
    return RankQuery(tables="A", ranking=expression, k=k)


class TestExpressionIndexes:
    def test_optimizer_uses_expression_index(self):
        catalog, expression = make_catalog(with_expression_index=True)
        optimizer = Optimizer(catalog, CostModel(), OptimizerConfig())
        result = optimizer.optimize(single_table_query(expression))
        assert isinstance(result.best_plan, AccessPlan)
        assert result.best_plan.index_name == "A_expr_idx"

    def test_without_index_falls_back_to_sort(self):
        catalog, expression = make_catalog(with_expression_index=False)
        optimizer = Optimizer(catalog, CostModel(), OptimizerConfig())
        result = optimizer.optimize(single_table_query(expression))
        assert "Sort" in result.best_plan.describe()

    @pytest.mark.parametrize("with_index", [True, False],
                             ids=["indexed", "sorted"])
    def test_results_identical_either_way(self, with_index):
        catalog, expression = make_catalog(with_index)
        optimizer = Optimizer(catalog, CostModel(), OptimizerConfig())
        result = optimizer.optimize(single_table_query(expression, k=4))
        root = PlanBuilder(catalog).build_query(result)
        got = [round(expression.evaluate(r), 9) for r in root]
        truth = sorted(
            (expression.evaluate(r)
             for r in catalog.table("A").scan()),
            reverse=True,
        )[:4]
        assert got == [round(v, 9) for v in truth]

    def test_index_scan_streams_expression_order(self):
        catalog, expression = make_catalog(with_expression_index=True)
        table = catalog.table("A")
        index = table.get_index("A_expr_idx")
        scores = [score for score, _row in index.sorted_access()]
        assert scores == sorted(scores, reverse=True)
