"""Byte-identical equivalence of sharded parallel rank-join execution.

Sharded execution (hash-partitioned inputs, per-shard HRJN pipelines,
rank-aware ScoreMerge gather) must return *exactly* the serial plan's
rows -- same values, same order -- in both inline and process-pool
modes, across a matrix of plan shapes mirroring the breadth of the
checkpoint suite, and even while per-shard transient faults are being
retried.
"""

import pytest

from repro.common.errors import TransientFaultError
from repro.common.rng import make_rng
from repro.executor.database import Database
from repro.executor.shard_pool import ShardPool, ShardStream
from repro.optimizer.enumerator import OptimizerConfig

ROWS = 240
SHARD_COUNTS = (2, 4)


def make_db(seed=5, rows=ROWS, key_domain=30):
    """A/C rank float ``c1`` and join on int ``c2``; B is mirrored
    (int ``c1``, float ``c2``) so every score column has a descending
    index and every A-B / B-C predicate joins int columns."""
    rng = make_rng(seed)
    db = Database(config=OptimizerConfig(enable_nrjn=False))
    for name in ("A", "C"):
        db.create_table(
            name, [("c1", "float"), ("c2", "int")], rows=[
                [float(rng.uniform(0, 1)),
                 int(rng.integers(0, key_domain))]
                for _ in range(rows)
            ],
        )
    db.create_table(
        "B", [("c1", "int"), ("c2", "float")], rows=[
            [int(rng.integers(0, key_domain)),
             float(rng.uniform(0, 1))]
            for _ in range(rows)
        ],
    )
    db.analyze()
    return db


def topk_sql(k=5, weights=(0.3, 0.7), where="A.c2 = B.c1",
             tables="A, B", select="x, y, rank",
             left="A.c1", right="B.c2"):
    return """
WITH Ranked AS (
  SELECT %s AS x, %s AS y,
         rank() OVER (ORDER BY (%g*%s + %g*%s)) AS rank
  FROM %s WHERE %s)
SELECT %s FROM Ranked WHERE rank <= %d
""" % (left, right, weights[0], left, weights[1], right,
       tables, where, select, k)


# Sixteen plan shapes: one per checkpoint-suite operator family --
# varying k, score weights, join direction, selections, projections,
# a three-way join and a joinless ranking (the latter two exercise the
# serial-fallback path of the forced parallel modes).
SHAPES = {
    "base_k5": topk_sql(),
    "k1": topk_sql(k=1),
    "k20": topk_sql(k=20),
    "k_large": topk_sql(k=400),
    "even_weights": topk_sql(weights=(0.5, 0.5)),
    "skewed_weights": topk_sql(weights=(0.9, 0.1)),
    "more_skew": topk_sql(weights=(0.25, 0.75), k=7),
    "selection_left": topk_sql(
        where="A.c2 = B.c1 AND A.c1 > 0.2", k=10),
    "selection_right": topk_sql(
        where="A.c2 = B.c1 AND B.c2 > 0.1", k=10),
    "swapped_tables": topk_sql(
        tables="B, A", where="B.c1 = A.c2"),
    "swapped_predicate": topk_sql(where="B.c1 = A.c2"),
    "bc_join": topk_sql(
        tables="B, C", where="B.c1 = C.c2",
        left="B.c2", right="C.c1"),
    "no_rank_in_select": topk_sql(select="x, y"),
    "reordered_select": topk_sql(select="y, rank, x"),
    "three_way": """
WITH Ranked AS (
  SELECT A.c1 AS x, B.c2 AS y, C.c1 AS z,
         rank() OVER (ORDER BY (0.2*A.c1 + 0.5*B.c2 + 0.3*C.c1))
           AS rank
  FROM A, B, C WHERE A.c2 = B.c1 AND B.c1 = C.c2)
SELECT x, y, z FROM Ranked WHERE rank <= 5
""",
    "single_table": """
WITH Ranked AS (
  SELECT A.c1 AS x,
         rank() OVER (ORDER BY (1.0*A.c1)) AS rank
  FROM A)
SELECT x FROM Ranked WHERE rank <= 10
""",
}


@pytest.fixture(scope="module")
def serial_rows():
    db = make_db()
    return {name: db.execute(sql, parallel="off").rows
            for name, sql in SHAPES.items()}


class TestShapeEquivalence:
    @pytest.mark.parametrize("shape", sorted(SHAPES))
    def test_inline_matches_serial(self, shape, serial_rows):
        db = make_db()
        for shards in SHARD_COUNTS:
            report = db.execute(SHAPES[shape], parallel="inline",
                                shards=shards)
            assert report.rows == serial_rows[shape], (
                "inline shards=%d diverged on %s" % (shards, shape)
            )

    @pytest.mark.parametrize("shape", sorted(SHAPES))
    def test_pool_matches_serial(self, shape, serial_rows):
        db = make_db()
        try:
            for shards in SHARD_COUNTS:
                report = db.execute(SHAPES[shape], parallel="pool",
                                    shards=shards)
                assert report.rows == serial_rows[shape], (
                    "pool shards=%d diverged on %s" % (shards, shape)
                )
        finally:
            db.shard_pool.shutdown()

    def test_auto_mode_matches_serial(self, serial_rows):
        db = make_db()
        try:
            for shards in SHARD_COUNTS:
                report = db.execute(SHAPES["base_k5"], parallel="auto",
                                    shards=shards)
                assert report.rows == serial_rows["base_k5"]
        finally:
            db.shard_pool.shutdown()


def _faulting_pool(pool, times=1):
    """Wrap ``pool.submit`` so every shard-0 window faults ``times``
    times before succeeding (exercising the retry path end to end)."""
    original = pool.submit
    injected = []

    def submit(spec, skip, budget, attempt=1):
        spec = dict(spec, fault={"times": times})
        injected.append(attempt)
        return original(spec, skip, budget, attempt)

    pool.submit = submit
    return injected


class TestShardFaults:
    def test_stream_retries_transient_faults(self, serial_rows):
        db = make_db()
        try:
            db.execute(SHAPES["base_k5"], parallel="pool", shards=2)
            injected = _faulting_pool(db.shard_pool, times=1)
            report = db.execute(SHAPES["base_k5"], parallel="pool",
                                shards=2)
            assert report.rows == serial_rows["base_k5"]
            assert injected, "fault injection never engaged"
            streams = [snap for snap in report.operators
                       if "ShardStream" in snap.description]
            assert streams, "pool plan did not run ShardStreams"
        finally:
            db.shard_pool.shutdown()

    def test_persistent_fault_raises(self):
        db = make_db()
        try:
            db.execute(SHAPES["base_k5"], parallel="pool", shards=2)
            _faulting_pool(db.shard_pool,
                           times=ShardStream.MAX_RETRIES + 5)
            with pytest.raises(TransientFaultError):
                db.execute(SHAPES["base_k5"], parallel="pool",
                           shards=2)
        finally:
            db.shard_pool.shutdown()

    def test_guarded_run_records_shard_retries(self, serial_rows):
        db = make_db()
        try:
            db.execute(SHAPES["base_k5"], parallel="pool", shards=2)
            _faulting_pool(db.shard_pool, times=1)
            report = db.execute_guarded(SHAPES["base_k5"],
                                        parallel="pool", shards=2)
            assert report.rows == serial_rows["base_k5"]
            kinds = [event.kind for event in report.recovery.events]
            assert "shard_retry" in kinds
            assert report.recovery.path == "direct"
        finally:
            db.shard_pool.shutdown()


class TestKernelWindows:
    """The worker kernel is a pure function of (spec, window)."""

    def _spec(self, db):
        captured = {}
        original = ShardPool.submit

        def spy(pool, spec, skip, budget, attempt=1):
            captured.setdefault("spec", dict(spec))
            return original(pool, spec, skip, budget, attempt)

        ShardPool.submit = spy
        try:
            db.execute(SHAPES["base_k5"], parallel="pool", shards=2)
        finally:
            ShardPool.submit = original
        return captured["spec"]

    def test_windows_tile_the_stream(self):
        db = make_db()
        try:
            spec = self._spec(db)
            pool = db.shard_pool
            whole = pool.run_inline(spec, 0, 30)["rows"]
            tiled = (pool.run_inline(spec, 0, 10)["rows"]
                     + pool.run_inline(spec, 10, 10)["rows"]
                     + pool.run_inline(spec, 20, 10)["rows"])
            assert tiled == whole
        finally:
            db.shard_pool.shutdown()

    def test_inline_fault_respects_attempts(self):
        db = make_db()
        try:
            spec = dict(self._spec(db), fault={"times": 2})
            pool = db.shard_pool
            with pytest.raises(TransientFaultError):
                pool.run_inline(spec, 0, 5, attempt=1)
            with pytest.raises(TransientFaultError):
                pool.run_inline(spec, 0, 5, attempt=2)
            result = pool.run_inline(spec, 0, 5, attempt=3)
            clean = pool.run_inline(
                dict(spec, fault=None), 0, 5,
            )
            assert result["rows"] == clean["rows"]
        finally:
            db.shard_pool.shutdown()
