"""Unit tests for optimizer plan nodes and their cost(k) semantics."""

import pytest

from repro.common.errors import OptimizerError
from repro.cost.model import CostModel
from repro.optimizer.expressions import ScoreExpression
from repro.optimizer.plans import (
    AccessPlan,
    FilterPlan,
    JoinPlan,
    RankJoinPlan,
    SortPlan,
)
from repro.optimizer.properties import OrderProperty
from repro.optimizer.query import FilterPredicate, JoinPredicate


@pytest.fixture
def model():
    return CostModel()


def access(model, name="A", n=10000, ordered=False):
    if ordered:
        return AccessPlan(
            model, name, n, order=OrderProperty.on("%s.c1" % name),
            index_name="%s_c1_idx" % name,
        )
    return AccessPlan(model, name, n)


def rank_join(model, name_left="A", name_right="B", n=10000, s=0.001,
              operator="hrjn", mode="average"):
    left = access(model, name_left, n, ordered=True)
    right = access(model, name_right, n, ordered=True)
    left_expr = ScoreExpression.single("%s.c1" % name_left)
    right_expr = ScoreExpression.single("%s.c1" % name_right)
    return RankJoinPlan(
        model, operator, left, right,
        [JoinPredicate("%s.c2" % name_left, "%s.c2" % name_right)],
        s, left_expr, right_expr, left_expr.combine(right_expr),
        estimation_mode=mode,
    )


class TestAccessPlan:
    def test_cost_scales_with_k(self, model):
        plan = access(model)
        assert plan.cost(10) < plan.cost(1000)

    def test_cost_clamped_at_cardinality(self, model):
        plan = access(model, n=100)
        assert plan.cost(10 ** 9) == plan.cost(100)

    def test_ordered_access_needs_index(self, model):
        with pytest.raises(OptimizerError, match="requires an index"):
            AccessPlan(model, "A", 10, order=OrderProperty.on("A.c1"))

    def test_k_dependent(self, model):
        assert access(model).k_dependent


class TestSortPlan:
    def test_cost_k_independent(self, model):
        plan = SortPlan(model, access(model), OrderProperty.on("A.c1"))
        assert plan.cost(1) == plan.cost(10 ** 6)
        assert not plan.k_dependent

    def test_blocking(self, model):
        plan = SortPlan(model, access(model), OrderProperty.on("A.c1"))
        assert plan.pipelined is False

    def test_needs_order(self, model):
        with pytest.raises(OptimizerError):
            SortPlan(model, access(model), OrderProperty.none())


class TestJoinPlan:
    def test_cardinality(self, model):
        plan = JoinPlan(
            model, "hash", access(model, "A"), access(model, "B"),
            [JoinPredicate("A.c2", "B.c2")], 0.01,
        )
        assert plan.cardinality == pytest.approx(0.01 * 10000 * 10000)

    def test_nl_preserves_pipeline(self, model):
        plan = JoinPlan(
            model, "nl", access(model, "A"), access(model, "B"),
            [JoinPredicate("A.c2", "B.c2")], 0.01,
        )
        assert plan.pipelined

    def test_hash_blocks(self, model):
        plan = JoinPlan(
            model, "hash", access(model, "A"), access(model, "B"),
            [JoinPredicate("A.c2", "B.c2")], 0.01,
        )
        assert not plan.pipelined
        assert not plan.k_dependent

    def test_needs_predicate(self, model):
        with pytest.raises(OptimizerError):
            JoinPlan(model, "hash", access(model, "A"),
                     access(model, "B"), [], 0.01)

    def test_unknown_method(self, model):
        with pytest.raises(OptimizerError):
            JoinPlan(model, "zigzag", access(model, "A"),
                     access(model, "B"),
                     [JoinPredicate("A.c2", "B.c2")], 0.01)


class TestFilterPlan:
    def _filtered(self, model, selectivity=0.25):
        return FilterPlan(
            model, access(model, ordered=True),
            [FilterPredicate("A.c2", "<=", 5)], selectivity,
        )

    def test_cardinality_scaled(self, model):
        assert self._filtered(model).cardinality == pytest.approx(2500)

    def test_preserves_order_and_pipelining(self, model):
        plan = self._filtered(model)
        assert plan.order.describe() == "A.c1"
        assert plan.pipelined

    def test_cost_inflates_by_inverse_selectivity(self, model):
        """Pulling k filtered rows needs ~k/p child rows."""
        plan = self._filtered(model, selectivity=0.25)
        unfiltered = access(model, ordered=True)
        assert plan.cost(100) >= unfiltered.cost(400) * 0.9

    def test_cost_clamped_at_child(self, model):
        plan = self._filtered(model, selectivity=0.001)
        # Even 1/p beyond the child's size reads at most the child.
        assert plan.cost(10 ** 6) <= plan.cost(10 ** 7) + 1e-9

    def test_invalid_selectivity(self, model):
        with pytest.raises(OptimizerError):
            FilterPlan(model, access(model),
                       [FilterPredicate("A.c2", "<=", 5)], 0.0)


class TestRankJoinPlan:
    def test_cost_monotone_in_k(self, model):
        plan = rank_join(model)
        costs = [plan.cost(k) for k in (1, 10, 100, 1000)]
        assert costs == sorted(costs)

    def test_k_dependent(self, model):
        assert rank_join(model).k_dependent

    def test_hrjn_pipelined_from_children(self, model):
        assert rank_join(model).pipelined

    def test_nrjn_ignores_right_pipelining(self, model):
        left = access(model, "A", ordered=True)
        right = SortPlan(model, access(model, "B"),
                         OrderProperty.on("B.c1"))
        plan = RankJoinPlan(
            model, "nrjn", left, right,
            [JoinPredicate("A.c2", "B.c2")], 0.01,
            ScoreExpression.single("A.c1"),
            ScoreExpression.single("B.c1"),
            ScoreExpression({"A.c1": 1.0, "B.c1": 1.0}),
        )
        assert plan.pipelined  # Outer pipelined suffices for NRJN.

    def test_jstar_costed(self, model):
        plan = rank_join(model, operator="jstar")
        assert 0 < plan.cost(10) < plan.cost(1000)

    def test_worst_mode_not_cheaper(self, model):
        average = rank_join(model, mode="average")
        worst = rank_join(model, mode="worst")
        assert worst.cost(100) >= average.cost(100)

    def test_propagate_depths_records(self, model):
        top = RankJoinPlan(
            model, "hrjn", rank_join(model),
            access(model, "C", ordered=True),
            [JoinPredicate("B.c2", "C.c2")], 0.001,
            ScoreExpression({"A.c1": 1.0, "B.c1": 1.0}),
            ScoreExpression.single("C.c1"),
            ScoreExpression({"A.c1": 1.0, "B.c1": 1.0, "C.c1": 1.0}),
        )
        records = top.propagate_depths(100)
        assert records[0][0] is top
        assert records[0][1] == 100
        # Child rank-join's required k equals the top's left depth.
        child_record = records[1]
        assert child_record[1] == pytest.approx(
            records[0][2].d_left,
        )

    def test_depth_estimate_clamped(self, model):
        plan = rank_join(model, n=50, s=0.5)
        estimate = plan.depth_estimate(10 ** 9)
        assert estimate.d_left <= 50

    def test_unknown_operator(self, model):
        with pytest.raises(OptimizerError):
            rank_join(model, operator="zigzag")
