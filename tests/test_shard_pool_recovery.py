"""Worker-death recovery for the sharded process-pool vehicle.

A dead worker process breaks every in-flight future of a
``ProcessPoolExecutor`` at once (``BrokenProcessPool``).  That is not
a data fault -- the window never ran -- so a :class:`ShardStream`
re-dispatches it verbatim after rebuilding the pool once; a second
death degrades the stream to inline in-process execution for the rest
of the query (recorded as the ``shard_pool_degraded`` recovery path)
instead of failing the query.
"""

from concurrent.futures import Future
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.common.errors import ExecutionError, TransientFaultError
from repro.common.rng import make_rng
from repro.executor.database import Database
from repro.executor.shard_pool import ShardPool, ShardStream
from repro.optimizer.enumerator import OptimizerConfig
from repro.robustness.recovery import GuardedExecutor, RecoveryLog

SQL = """
WITH Ranked AS (
  SELECT A.c1 AS x, B.c2 AS y,
         rank() OVER (ORDER BY (0.3*A.c1 + 0.7*B.c2)) AS rank
  FROM A, B WHERE A.c2 = B.c1)
SELECT x, y, rank FROM Ranked WHERE rank <= 5
"""


def make_db(seed=5, rows=240, key_domain=30):
    rng = make_rng(seed)
    db = Database(config=OptimizerConfig(enable_nrjn=False))
    db.create_table("A", [("c1", "float"), ("c2", "int")], rows=[
        [float(rng.uniform(0, 1)), int(rng.integers(0, key_domain))]
        for _ in range(rows)
    ])
    db.create_table("B", [("c1", "int"), ("c2", "float")], rows=[
        [int(rng.integers(0, key_domain)), float(rng.uniform(0, 1))]
        for _ in range(rows)
    ])
    db.analyze()
    return db


# ----------------------------------------------------------------------
# Stream-level behaviour against a scripted pool
# ----------------------------------------------------------------------
ROWS = [{"S.v": n, "S.score": 1.0 - n / 10.0} for n in range(3)]


def window(skip, budget):
    """Mimic ``_run_shard_task``'s window contract over ROWS."""
    needed = skip + budget
    emitted = ROWS[:needed]
    return {
        "rows": emitted[skip:],
        "pulled": (4, 4),
        "exhausted": len(emitted) < needed,
    }


SPEC = {
    "score_column": "S.score",
    "left": {"table": "A"},
    "right": {"table": "B"},
}


class ScriptedPool:
    """A pool whose submits fail with ``BrokenProcessPool`` N times."""

    def __init__(self, deaths=0, rebuild_raises=False):
        self.deaths = deaths
        self.rebuild_raises = rebuild_raises
        self.submits = 0
        self.rebuilds = 0
        self.inline_runs = 0

    def submit(self, spec, skip, budget, attempt=1):
        self.submits += 1
        future = Future()
        if self.deaths > 0:
            self.deaths -= 1
            future.set_exception(
                BrokenProcessPool("a worker died abruptly"))
        else:
            future.set_result(window(skip, budget))
        return future

    def run_inline(self, spec, skip, budget, attempt=1):
        self.inline_runs += 1
        return window(skip, budget)

    def rebuild(self):
        self.rebuilds += 1
        if self.rebuild_raises:
            raise OSError("cannot fork")


def make_stream(pool, budget=16):
    return ShardStream(pool, SPEC, schema=("S.v", "S.score"),
                       shard_index=0, shard_count=1, budget=budget,
                       name="SH0")


def drain(stream):
    rows = []
    while True:
        row = stream.next()
        if row is None:
            return rows
        rows.append(row)


class TestShardStreamWorkerDeath:
    def test_single_death_rebuilds_and_redispatches(self):
        pool = ScriptedPool(deaths=1)
        stream = make_stream(pool)
        stream.open()
        rows = drain(stream)
        stream.close()
        assert [row["S.v"] for row in rows] == [0, 1, 2]
        assert pool.rebuilds == 1
        assert stream.pool_rebuilds == 1
        assert not stream.degraded
        assert pool.inline_runs == 0

    def test_second_death_degrades_to_inline(self):
        pool = ScriptedPool(deaths=2)
        stream = make_stream(pool)
        stream.open()
        rows = drain(stream)
        stream.close()
        assert [row["S.v"] for row in rows] == [0, 1, 2]
        assert stream.degraded
        assert pool.inline_runs >= 1

    def test_failed_rebuild_degrades_immediately(self):
        pool = ScriptedPool(deaths=1, rebuild_raises=True)
        stream = make_stream(pool)
        stream.open()
        rows = drain(stream)
        stream.close()
        assert [row["S.v"] for row in rows] == [0, 1, 2]
        assert stream.degraded
        assert pool.rebuilds == 1

    def test_degraded_stream_stays_inline(self):
        pool = ScriptedPool(deaths=2)
        stream = make_stream(pool, budget=1)
        stream.open()
        rows = drain(stream)
        stream.close()
        assert [row["S.v"] for row in rows] == [0, 1, 2]
        # Once degraded, later windows never touch the pool again.
        submits_at_degrade = pool.submits
        assert pool.inline_runs >= 2
        assert pool.submits == submits_at_degrade

    def test_transient_faults_still_retry_inline_when_degraded(self):
        pool = ScriptedPool(deaths=2)
        fails = {"n": 1}
        original = pool.run_inline

        def flaky_inline(spec, skip, budget, attempt=1):
            if fails["n"] > 0:
                fails["n"] -= 1
                raise TransientFaultError("flaky shard")
            return original(spec, skip, budget, attempt)

        pool.run_inline = flaky_inline
        stream = make_stream(pool)
        stream.open()
        rows = drain(stream)
        stream.close()
        assert [row["S.v"] for row in rows] == [0, 1, 2]
        assert stream.retries == 1

    def test_other_worker_failures_still_raise(self):
        pool = ScriptedPool()

        def poisoned_submit(spec, skip, budget, attempt=1):
            future = Future()
            future.set_exception(RuntimeError("worker raised"))
            return future

        pool.submit = poisoned_submit
        stream = make_stream(pool)
        with pytest.raises(ExecutionError):
            stream.open()
            drain(stream)
        stream.close()

    def test_recovery_log_records_degradation(self):
        pool = ScriptedPool(deaths=2)
        stream = make_stream(pool)
        stream.open()
        drain(stream)
        log = RecoveryLog()
        GuardedExecutor._record_shard_recoveries(stream, log)
        stream.close()
        kinds = [event.kind for event in log.events]
        assert "shard_pool_degraded" in kinds
        # Degradation is a serviced query, not an escalation.
        assert log.path == "direct"

    def test_state_dict_carries_degradation_flags(self):
        pool = ScriptedPool(deaths=2)
        stream = make_stream(pool)
        stream.open()
        drain(stream)
        state = stream.state_dict()
        stream.close()
        restored = make_stream(ScriptedPool())
        restored.load_state_dict(state)
        assert restored.pool_rebuilds == 1
        assert restored.degraded

    def test_legacy_state_without_flags_still_loads(self):
        stream = make_stream(ScriptedPool())
        stream.open()
        drain(stream)
        state = stream.state_dict()
        stream.close()
        del state["state"]["rebuilds"], state["state"]["degraded"]
        restored = make_stream(ScriptedPool())
        restored.load_state_dict(state)
        assert restored.pool_rebuilds == 0
        assert not restored.degraded


# ----------------------------------------------------------------------
# Pool-level rebuild
# ----------------------------------------------------------------------
class TestShardPoolRebuild:
    def test_rebuild_is_idempotent_on_a_healthy_pool(self):
        db = make_db()
        pool = ShardPool(db.catalog)
        if not pool.available:  # pragma: no cover - no fork platform
            pytest.skip("fork-based pools unavailable")
        try:
            first = pool._ensure()
            assert pool.rebuild() is first
            # A broken executor (what BrokenProcessPool leaves behind)
            # is replaced by a fresh one.
            first._broken = "a worker died"
            second = pool.rebuild()
            assert second is not first
            assert pool.rebuild() is second
        finally:
            pool.shutdown()


# ----------------------------------------------------------------------
# End-to-end: a guarded pool query survives total worker loss
# ----------------------------------------------------------------------
class TestEndToEndDegradation:
    def test_guarded_query_degrades_and_matches_serial(self):
        serial = make_db().execute_guarded(SQL, parallel="off")
        db = make_db()
        db.execute(SQL, parallel="pool", shards=2)  # build the pool

        def always_broken(spec, skip, budget, attempt=1):
            future = Future()
            future.set_exception(
                BrokenProcessPool("every worker is gone"))
            return future

        db.shard_pool.submit = always_broken
        try:
            report = db.execute_guarded(SQL, parallel="pool", shards=2)
        finally:
            db.shard_pool.shutdown()
        assert report.rows == serial.rows
        kinds = [event.kind for event in report.recovery.events]
        assert "shard_pool_degraded" in kinds
        assert report.recovery.path == "direct"
