"""Durable checkpoint persistence: wire format, store, crash recovery.

Pins the durability acceptance scenario: every checkpoint a guarded
execution takes under a ``state_dir`` becomes a validated, checksummed
snapshot on disk; a *fresh process* (modelled as a freshly built,
identically seeded :class:`Database`) continues the query
byte-identically from the last durable snapshot without rereading
consumed tuples; and any corruption -- bit flips, truncation, version
skew -- is detected by validation and degrades to a restart
(recovery path ``"restarted"``), never a crash.
"""

import os
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import (
    CheckpointCorruptionError,
    ExecutionError,
)
from repro.common.rng import make_rng
from repro.executor.database import Database
from repro.observability.metrics import MetricsRegistry
from repro.optimizer.enumerator import OptimizerConfig
from repro.robustness.budget import ResourceBudget
from repro.robustness.durability import (
    _HEADER,
    FORMAT_VERSION,
    MAGIC,
    CheckpointStore,
    decode_snapshot,
    default_query_id,
    encode_snapshot,
)

from tests.test_checkpoint_roundtrip import FACTORIES, drain, full_run

SQL = """
WITH Ranked AS (
  SELECT A.c1 AS x, B.c2 AS y,
         rank() OVER (ORDER BY (0.3*A.c1 + 0.7*B.c2)) AS rank
  FROM A, B WHERE A.c2 = B.c1)
SELECT x, y, rank FROM Ranked WHERE rank <= 5
"""


def make_db(rows=400, seed=3, domain=15, hrjn_only=False):
    """The Figure 6 workload tables; deterministic across processes."""
    rng = make_rng(seed)
    config = (OptimizerConfig(enable_nrjn=False) if hrjn_only else None)
    db = Database(config=config)
    db.create_table("A", [("c1", "float"), ("c2", "int")], rows=[
        [float(rng.uniform(0, 1)), int(rng.integers(0, domain))]
        for _ in range(rows)
    ])
    db.create_table("B", [("c1", "int"), ("c2", "float")], rows=[
        [int(rng.integers(0, domain)), float(rng.uniform(0, 1))]
        for _ in range(rows)
    ])
    db.analyze()
    return db


# ----------------------------------------------------------------------
# Wire format
# ----------------------------------------------------------------------
class TestSnapshotWireFormat:
    PAYLOAD = {"query": "marker", "checkpoint": None, "rows": [1, 2, 3]}

    def test_roundtrip(self):
        blob = encode_snapshot(self.PAYLOAD)
        assert blob[:4] == MAGIC
        assert decode_snapshot(blob) == self.PAYLOAD

    def test_truncated_header_detected(self):
        with pytest.raises(CheckpointCorruptionError) as info:
            decode_snapshot(b"RA")
        assert info.value.kind == "truncated"

    def test_bad_magic_detected(self):
        blob = encode_snapshot(self.PAYLOAD)
        with pytest.raises(CheckpointCorruptionError) as info:
            decode_snapshot(b"XXXX" + blob[4:])
        assert info.value.kind == "magic"

    def test_version_mismatch_detected(self):
        blob = bytearray(encode_snapshot(self.PAYLOAD))
        struct.pack_into(">H", blob, 4, FORMAT_VERSION + 1)
        with pytest.raises(CheckpointCorruptionError) as info:
            decode_snapshot(bytes(blob))
        assert info.value.kind == "version"

    def test_truncated_payload_detected(self):
        blob = encode_snapshot(self.PAYLOAD)
        with pytest.raises(CheckpointCorruptionError) as info:
            decode_snapshot(blob[:-3])
        assert info.value.kind == "truncated"

    @pytest.mark.parametrize("offset", [0, 1, 7])
    def test_payload_bit_flip_detected_by_checksum(self, offset):
        blob = bytearray(encode_snapshot(self.PAYLOAD))
        blob[_HEADER.size + offset] ^= 0x40
        with pytest.raises(CheckpointCorruptionError) as info:
            decode_snapshot(bytes(blob))
        assert info.value.kind == "checksum"

    def test_non_dict_payload_rejected(self):
        with pytest.raises(CheckpointCorruptionError) as info:
            decode_snapshot(encode_snapshot([1, 2, 3]))
        assert info.value.kind == "payload"


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------
class TestCheckpointStore:
    def _store(self, tmp_path, **kwargs):
        kwargs.setdefault("fsync", False)
        return CheckpointStore(tmp_path / "state", **kwargs)

    def test_save_and_load_latest(self, tmp_path):
        store = self._store(tmp_path)
        path = store.save_checkpoint("q1", "the-query", None,
                                     reason="cadence")
        assert os.path.exists(path)
        payload = store.load_latest("q1")
        assert payload["query"] == "the-query"
        assert payload["reason"] == "cadence"
        assert payload["format"] == FORMAT_VERSION

    def test_load_latest_without_snapshots_returns_none(self, tmp_path):
        assert self._store(tmp_path).load_latest("missing") is None

    def test_retention_keeps_newest_and_leaves_no_temp_files(
            self, tmp_path):
        store = self._store(tmp_path, keep=2)
        for n in range(5):
            store.save_checkpoint("q1", "query-%d" % n, None)
        names = sorted(os.listdir(store.root))
        assert names == ["q1-00000004.ckpt", "q1-00000005.ckpt"]
        assert store.load_latest("q1")["query"] == "query-4"

    def test_queries_are_isolated(self, tmp_path):
        store = self._store(tmp_path)
        store.save_checkpoint("alpha", "a", None)
        store.save_checkpoint("alpha.2", "b", None)
        assert store.query_ids() == ["alpha", "alpha.2"]
        assert store.load_latest("alpha")["query"] == "a"
        assert store.discard("alpha") == 1
        assert store.query_ids() == ["alpha.2"]

    def test_invalid_query_id_rejected(self, tmp_path):
        store = self._store(tmp_path)
        with pytest.raises(ExecutionError):
            store.save_checkpoint("../escape", "q", None)
        with pytest.raises(ExecutionError):
            store.save_checkpoint("", "q", None)

    def test_bit_flip_detected_file_deleted_and_counted(self, tmp_path):
        metrics = MetricsRegistry()
        store = self._store(tmp_path, metrics=metrics)
        path = store.save_checkpoint("q1", "the-query", None)
        with open(path, "r+b") as handle:
            handle.seek(_HEADER.size + 2)
            byte = handle.read(1)
            handle.seek(_HEADER.size + 2)
            handle.write(bytes([byte[0] ^ 0x10]))
        with pytest.raises(CheckpointCorruptionError) as info:
            store.load_latest("q1")
        assert info.value.kind == "checksum"
        assert not os.path.exists(path), "corrupt snapshot not deleted"
        counter = metrics.counter("durability_corruptions_total")
        assert counter.value(kind="checksum") == 1

    def test_version_skew_detected_on_disk(self, tmp_path):
        store = self._store(tmp_path)
        path = store.save_checkpoint("q1", "the-query", None)
        with open(path, "r+b") as handle:
            handle.seek(4)
            handle.write(struct.pack(">H", FORMAT_VERSION + 7))
        with pytest.raises(CheckpointCorruptionError) as info:
            store.load_latest("q1")
        assert info.value.kind == "version"

    def test_truncated_snapshot_detected_on_disk(self, tmp_path):
        store = self._store(tmp_path)
        path = store.save_checkpoint("q1", "the-query", None)
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size - 5)
        with pytest.raises(CheckpointCorruptionError) as info:
            store.load_latest("q1")
        assert info.value.kind == "truncated"

    def test_write_metrics_recorded(self, tmp_path):
        metrics = MetricsRegistry()
        store = CheckpointStore(tmp_path / "state", metrics=metrics)
        path = store.save_checkpoint("q1", "the-query", None,
                                     reason="cadence")
        writes = metrics.counter("durability_writes_total")
        assert writes.value(reason="cadence") == 1
        assert (metrics.counter("durability_bytes_total").total()
                == os.path.getsize(path))
        # File fsync + directory-entry fsync per write.
        assert metrics.counter("durability_fsyncs_total").total() == 2


# ----------------------------------------------------------------------
# Serialization property over every checkpoint-suite plan shape
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(kind=st.sampled_from(sorted(FACTORIES)), data=st.data())
def test_serialized_state_roundtrips_for_every_plan_shape(kind, data):
    """For all 16 operator-tree shapes of the checkpoint suite and an
    arbitrary interrupt offset, operator state survives the full wire
    format (encode -> bytes -> decode) and the restored tree emits
    exactly the remaining rows."""
    factory = FACTORIES[kind]
    expected = full_run(factory)
    j = data.draw(st.integers(0, len(expected)), label="interrupt_after")
    original = factory()
    original.open()
    try:
        drain(original, j)
        state = original.state_dict()
    finally:
        original.close()
    blob = encode_snapshot({"query": kind, "state": state})
    payload = decode_snapshot(blob)
    restored = factory()
    restored.load_state_dict(payload["state"])
    try:
        assert drain(restored) == expected[j:], (
            "shape %s diverged after offset %d" % (kind, j)
        )
    finally:
        restored.close()


# ----------------------------------------------------------------------
# Database-level crash recovery
# ----------------------------------------------------------------------
class TestDatabaseDurableRecovery:
    def _suspend_into(self, state_dir, hrjn_only=False, max_pulls=100):
        db = make_db(hrjn_only=hrjn_only)
        report = db.execute_guarded(
            SQL, budget=ResourceBudget(max_pulls=max_pulls),
            checkpoint=2, state_dir=state_dir,
        )
        assert report.suspended
        return report

    def test_checkpoints_become_durable_snapshots(self, tmp_path):
        state_dir = str(tmp_path / "state")
        self._suspend_into(state_dir)
        store = CheckpointStore(state_dir)
        ids = store.query_ids()
        assert ids == [default_query_id(
            make_db().explain(SQL).query)]
        assert store.snapshots(ids[0])
        assert not [name for name in os.listdir(state_dir)
                    if name.endswith(".tmp")]

    def test_fresh_process_resumes_byte_identically(self, tmp_path):
        clean = make_db().execute_guarded(SQL)
        state_dir = str(tmp_path / "state")
        first = self._suspend_into(state_dir)
        assert first.rows == clean.rows[:len(first.rows)]
        # A different, freshly built Database over identically seeded
        # tables models the restarted process.
        resumed = make_db().resume(state_dir)
        assert resumed.rows == clean.rows
        assert not resumed.suspended
        assert resumed.recovery.path == "resumed"

    def test_resume_does_not_reread_consumed_tuples(self, tmp_path):
        clean = make_db(hrjn_only=True).execute_guarded(SQL)
        state_dir = str(tmp_path / "state")
        db = make_db(hrjn_only=True)
        first = db.execute_guarded(
            SQL, budget=ResourceBudget(max_pulls=15), checkpoint=2,
            state_dir=state_dir,
        )
        assert first.suspended and not first.suspension.pre_open
        snapshot_pulled = first.suspension.checkpoint.total_pulled
        assert snapshot_pulled > 0
        resumed = make_db(hrjn_only=True).resume(state_dir)
        assert resumed.rows == clean.rows
        # The resumed guard counts only post-restore pulls: together
        # with the snapshot's preserved work it must not exceed the
        # uninterrupted run (nothing was reread).
        total = clean.recovery.stats["pulled_total"]
        resumed_pulls = resumed.recovery.stats["pulled_total"]
        assert resumed_pulls == total - snapshot_pulled

    def test_resume_from_single_snapshot_file(self, tmp_path):
        clean = make_db().execute_guarded(SQL)
        state_dir = str(tmp_path / "state")
        self._suspend_into(state_dir)
        store = CheckpointStore(state_dir)
        latest = store.snapshots(store.query_ids()[0])[-1]
        resumed = make_db().resume(latest)
        assert resumed.rows == clean.rows

    def test_load_suspended_requires_unambiguous_query(self, tmp_path):
        state_dir = str(tmp_path / "state")
        db = make_db()
        with pytest.raises(ExecutionError):
            db.load_suspended(state_dir, query_id="nothing-there")
        CheckpointStore(state_dir, fsync=False).save_checkpoint(
            "qa", "x", None)
        CheckpointStore(state_dir, fsync=False).save_checkpoint(
            "qb", "y", None)
        with pytest.raises(ExecutionError):
            db.load_suspended(state_dir)

    def test_corrupt_snapshot_restarts_from_scratch(self, tmp_path):
        clean = make_db().execute_guarded(SQL)
        state_dir = str(tmp_path / "state")
        self._suspend_into(state_dir)
        # Flip a payload byte in *every* retained snapshot: validation
        # must reject them all and the resume must degrade to restart.
        store = CheckpointStore(state_dir)
        (query_id,) = store.query_ids()
        for path in store.snapshots(query_id):
            with open(path, "r+b") as handle:
                handle.seek(_HEADER.size + 1)
                byte = handle.read(1)
                handle.seek(_HEADER.size + 1)
                handle.write(bytes([byte[0] ^ 0x20]))
        fresh = make_db()
        with pytest.raises(CheckpointCorruptionError):
            fresh.resume(state_dir)
        # Both snapshots were deleted on failed validation; the caller
        # retries and lands on the no-snapshot restart path below.
        assert store.query_ids() == []
        report = fresh.execute_guarded(SQL, state_dir=state_dir)
        assert report.rows == clean.rows

    def test_stale_snapshot_restarts_with_restarted_path(self, tmp_path):
        """A snapshot whose state no longer fits the re-optimized plan
        is discarded and the query reruns, recorded as "restarted"."""
        clean = make_db().execute_guarded(SQL)
        state_dir = str(tmp_path / "state")
        self._suspend_into(state_dir, hrjn_only=True, max_pulls=15)
        store = CheckpointStore(state_dir, fsync=False)
        (query_id,) = store.query_ids()
        payload = store.load_latest(query_id)
        # Corrupt the checkpoint *semantically*: valid wire format, but
        # operator state that cannot restore into the rebuilt plan.
        payload["checkpoint"].state = {
            "operator": "Limit", "name": "BOGUS", "opened": True,
            "children": [],
        }
        store.save_checkpoint(
            query_id, payload["query"], payload["checkpoint"],
            policy=payload["policy"], reason="stale")
        fresh = make_db()
        metrics = fresh.metrics
        report = fresh.resume(state_dir)
        assert report.rows == clean.rows
        assert report.recovery.path == "restarted"
        recoveries = metrics.counter("durability_recoveries_total")
        assert recoveries.value(outcome="restarted") == 1
        # The stale snapshots were discarded and the rerun completed,
        # so no durable state lingers for this query.
        assert store.query_ids() == []
