"""Unit tests for NRJN -- the nested-loops rank-join operator."""

import pytest

from repro.common.errors import ExecutionError
from repro.data.generators import generate_ranked_table
from repro.operators.joins import HashJoin
from repro.operators.nrjn import NRJN
from repro.operators.scan import IndexScan, TableScan
from repro.operators.topk import Limit, TopK
from repro.storage.table import Table


def ranked_pair(n=200, selectivity=0.05, seed=0):
    left = generate_ranked_table("L", n, selectivity=selectivity, seed=seed)
    right = generate_ranked_table(
        "R", n, selectivity=selectivity, seed=seed + 1,
    )
    return left, right


def nrjn_over(left, right, **kwargs):
    return NRJN(
        IndexScan(left, left.get_index("L_score_idx")),
        TableScan(right),  # Inner needs no ranked access.
        "L.key", "R.key", "L.score", "R.score", name="NR", **kwargs,
    )


def baseline_scores(left, right, k):
    join = HashJoin(TableScan(left), TableScan(right), "L.key", "R.key")
    key = lambda r: r["L.score"] + r["R.score"]
    return [round(key(r), 9) for r in TopK(join, k, key, description="f")]


class TestCorrectness:
    def test_top_k_matches_baseline(self):
        left, right = ranked_pair()
        rows = list(Limit(nrjn_over(left, right), 10))
        assert [round(r["_score_NR"], 9) for r in rows] == baseline_scores(
            left, right, 10,
        )

    def test_scores_non_increasing(self):
        left, right = ranked_pair(seed=2)
        scores = [r["_score_NR"] for r in Limit(nrjn_over(left, right), 30)]
        assert all(a >= b - 1e-12 for a, b in zip(scores, scores[1:]))

    def test_inner_needs_no_sorted_access(self):
        """The inner is a plain heap scan -- the NRJN eligibility rule."""
        left, right = ranked_pair(seed=3)
        rows = list(Limit(nrjn_over(left, right), 5))
        assert len(rows) == 5

    def test_full_drain_matches_join_size(self):
        left, right = ranked_pair(n=60, selectivity=0.2, seed=4)
        rank_rows = list(nrjn_over(left, right))
        join_rows = list(HashJoin(
            TableScan(left), TableScan(right), "L.key", "R.key",
        ))
        assert len(rank_rows) == len(join_rows)

    def test_empty_outer(self):
        left = generate_ranked_table("L", 0, seed=1)
        right = generate_ranked_table("R", 10, seed=2)
        assert list(nrjn_over(left, right)) == []


class TestBehaviour:
    def test_inner_fully_materialised(self):
        left, right = ranked_pair(n=500, seed=5)
        rank_join = nrjn_over(left, right)
        list(Limit(rank_join, 5))
        d_outer, d_inner = rank_join.depths
        assert d_inner == 500  # Nested loops must exhaust the inner.
        assert d_outer < 500   # ... but the outer stops early.

    def test_outer_depth_monotone_in_k(self):
        left, right = ranked_pair(n=1000, selectivity=0.05, seed=6)
        depths = []
        for k in (5, 25, 100):
            rank_join = nrjn_over(left, right)
            list(Limit(rank_join, k))
            depths.append(rank_join.depths[0])
        assert depths == sorted(depths)

    def test_threshold_semantics(self):
        left, right = ranked_pair(seed=7)
        rank_join = nrjn_over(left, right)
        rank_join.open()
        assert rank_join.threshold() is None  # Nothing pulled yet.
        row = rank_join.next()
        if row is not None:
            assert row["_score_NR"] >= rank_join.threshold() - 1e-9
        rank_join.close()

    def test_unsorted_outer_detected(self):
        outer = Table.from_columns("L", [("key", "int"), ("score", "float")])
        for score in (0.2, 0.8):
            outer.insert([1, score])
        right = generate_ranked_table("R", 10, seed=8)
        rank_join = NRJN(
            TableScan(outer), TableScan(right),
            "L.key", "R.key", "L.score", "R.score",
        )
        with pytest.raises(ExecutionError, match="not sorted"):
            list(rank_join)

    def test_non_monotone_combiner_rejected(self):
        left, right = ranked_pair(seed=9)
        with pytest.raises(ExecutionError, match="MonotoneScore"):
            nrjn_over(left, right, combiner=max)

    def test_output_schema_contains_score_column(self):
        left, right = ranked_pair(seed=10)
        assert "_score_NR" in nrjn_over(left, right).schema

    def test_agrees_with_hrjn(self):
        from repro.operators.hrjn import HRJN

        left, right = ranked_pair(seed=11)
        nr_scores = [
            round(r["_score_NR"], 9)
            for r in Limit(nrjn_over(left, right), 15)
        ]
        hr = HRJN(
            IndexScan(left, left.get_index("L_score_idx")),
            IndexScan(right, right.get_index("R_score_idx")),
            "L.key", "R.key", "L.score", "R.score", name="H",
        )
        hr_scores = [round(r["_score_H"], 9) for r in Limit(hr, 15)]
        assert nr_scores == hr_scores
