"""Unit tests for the J* rank-join operator."""

import pytest

from repro.common.errors import ExecutionError
from repro.data.generators import generate_ranked_table
from repro.operators.hrjn import HRJN
from repro.operators.joins import HashJoin
from repro.operators.jstar import JStarRankJoin
from repro.operators.scan import IndexScan, TableScan
from repro.operators.topk import Limit, TopK
from repro.storage.table import Table


def ranked_pair(n=200, selectivity=0.05, seed=0):
    left = generate_ranked_table("L", n, selectivity=selectivity, seed=seed)
    right = generate_ranked_table(
        "R", n, selectivity=selectivity, seed=seed + 1,
    )
    return left, right


def jstar_over(left, right, **kwargs):
    return JStarRankJoin(
        IndexScan(left, left.get_index("L_score_idx")),
        IndexScan(right, right.get_index("R_score_idx")),
        "L.key", "R.key", "L.score", "R.score", name="JS", **kwargs,
    )


def baseline_scores(left, right, k):
    join = HashJoin(TableScan(left), TableScan(right), "L.key", "R.key")
    key = lambda r: r["L.score"] + r["R.score"]
    return [round(key(r), 9) for r in TopK(join, k, key, description="f")]


class TestCorrectness:
    def test_top_k_matches_baseline(self):
        left, right = ranked_pair()
        rows = list(Limit(jstar_over(left, right), 10))
        assert [round(r["_score_JS"], 9) for r in rows] == (
            baseline_scores(left, right, 10)
        )

    def test_scores_non_increasing(self):
        left, right = ranked_pair(seed=2)
        scores = [r["_score_JS"] for r in Limit(jstar_over(left, right), 30)]
        assert all(a >= b - 1e-12 for a, b in zip(scores, scores[1:]))

    def test_full_drain_matches_join_size(self):
        left, right = ranked_pair(n=60, selectivity=0.2, seed=3)
        rank_rows = list(jstar_over(left, right))
        join_rows = list(HashJoin(
            TableScan(left), TableScan(right), "L.key", "R.key",
        ))
        assert len(rank_rows) == len(join_rows)

    def test_agrees_with_hrjn(self):
        left, right = ranked_pair(seed=4)
        js_scores = [
            round(r["_score_JS"], 9)
            for r in Limit(jstar_over(left, right), 15)
        ]
        hr = HRJN(
            IndexScan(left, left.get_index("L_score_idx")),
            IndexScan(right, right.get_index("R_score_idx")),
            "L.key", "R.key", "L.score", "R.score", name="H",
        )
        hr_scores = [round(r["_score_H"], 9) for r in Limit(hr, 15)]
        assert js_scores == hr_scores

    def test_empty_inputs(self):
        left = generate_ranked_table("L", 0, seed=1)
        right = generate_ranked_table("R", 0, seed=2)
        assert list(jstar_over(left, right)) == []


class TestBehaviour:
    def test_early_out_depths(self):
        left, right = ranked_pair(n=2000, selectivity=0.05, seed=5)
        rank_join = jstar_over(left, right)
        list(Limit(rank_join, 5))
        d_left, d_right = rank_join.depths
        assert d_left < 300 and d_right < 300

    def test_depth_not_worse_than_hrjn(self):
        """J* explores the candidate grid in exact score order, so its
        depth should not exceed HRJN's by more than a small slack."""
        left, right = ranked_pair(n=2000, selectivity=0.05, seed=6)
        js = jstar_over(left, right)
        list(Limit(js, 20))
        hr = HRJN(
            IndexScan(left, left.get_index("L_score_idx")),
            IndexScan(right, right.get_index("R_score_idx")),
            "L.key", "R.key", "L.score", "R.score", name="H",
        )
        list(Limit(hr, 20))
        assert sum(js.depths) <= sum(hr.depths) + 4

    def test_unsorted_input_detected(self):
        left = Table.from_columns("L", [("key", "int"), ("score", "float")])
        for score in (0.1, 0.9):
            left.insert([1, score])
        right = generate_ranked_table("R", 10, seed=7)
        rank_join = JStarRankJoin(
            TableScan(left),
            IndexScan(right, right.get_index("R_score_idx")),
            "L.key", "R.key", "L.score", "R.score",
        )
        with pytest.raises(ExecutionError, match="not sorted"):
            list(rank_join)

    def test_non_monotone_combiner_rejected(self):
        left, right = ranked_pair(seed=8)
        with pytest.raises(ExecutionError, match="MonotoneScore"):
            jstar_over(left, right, combiner=min)

    def test_frontier_tracked_as_buffer(self):
        left, right = ranked_pair(seed=9)
        rank_join = jstar_over(left, right)
        list(Limit(rank_join, 10))
        assert rank_join.stats.max_buffer > 0
