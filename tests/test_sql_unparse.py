"""Round-trip tests: unparse(query) must parse back to the same query."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optimizer.expressions import ScoreExpression
from repro.optimizer.query import FilterPredicate, JoinPredicate, RankQuery
from repro.sql.parser import parse_query
from repro.sql.unparse import to_sql


def assert_round_trip(query):
    parsed = parse_query(to_sql(query))
    assert parsed.tables == query.tables
    assert set(parsed.predicates) == set(query.predicates)
    assert set(parsed.filters) == set(query.filters)
    if query.ranking is None:
        assert parsed.ranking is None
        assert parsed.order_by == query.order_by
    else:
        assert parsed.ranking.same_order(query.ranking)
        assert parsed.k == query.k


class TestRoundTripExamples:
    def test_plain_join(self):
        assert_round_trip(RankQuery(
            tables="AB", predicates=[JoinPredicate("A.c2", "B.c2")],
        ))

    def test_order_by(self):
        assert_round_trip(RankQuery(tables="A", order_by="A.c1"))

    def test_ranking_with_filters(self):
        assert_round_trip(RankQuery(
            tables="ABC",
            predicates=[JoinPredicate("A.c2", "B.c2"),
                        JoinPredicate("B.c2", "C.c2")],
            ranking=ScoreExpression({"A.c1": 0.3, "B.c1": 0.3,
                                     "C.c1": 0.4}),
            k=7,
            filters=[FilterPredicate("A.c2", "<=", 4.0),
                     FilterPredicate("C.c1", ">", 0.25)],
        ))

    def test_alias_round_trip(self):
        query = RankQuery(
            tables=("a1", "a2"),
            predicates=[JoinPredicate("a1.c2", "a2.c2")],
            ranking=ScoreExpression({"a1.c1": 1.0, "a2.c1": 1.0}),
            k=4,
            aliases={"a1": "A", "a2": "A"},
        )
        parsed = parse_query(to_sql(query))
        assert parsed.aliases == query.aliases
        assert_round_trip(query)

    def test_unit_weight_formatting(self):
        query = RankQuery(
            tables="AB", predicates=[JoinPredicate("A.c2", "B.c2")],
            ranking=ScoreExpression({"A.c1": 1.0, "B.c1": 1.0}), k=3,
        )
        sql = to_sql(query)
        assert "1*" not in sql
        assert_round_trip(query)


# ----------------------------------------------------------------------
# Property-based round trips over generated queries
# ----------------------------------------------------------------------
_TABLES = ("A", "B", "C")

weights = st.floats(min_value=0.01, max_value=9.99, allow_nan=False)


@st.composite
def rank_queries(draw):
    n_tables = draw(st.integers(min_value=1, max_value=3))
    tables = _TABLES[:n_tables]
    predicates = [
        JoinPredicate("%s.c2" % tables[i], "%s.c2" % tables[i + 1])
        for i in range(n_tables - 1)
    ]
    ranking_tables = draw(st.sets(
        st.sampled_from(tables), min_size=1, max_size=n_tables,
    ))
    ranking = ScoreExpression({
        "%s.c1" % table: round(draw(weights), 4)
        for table in sorted(ranking_tables)
    })
    k = draw(st.integers(min_value=1, max_value=99))
    n_filters = draw(st.integers(min_value=0, max_value=2))
    filters = []
    for i in range(n_filters):
        table = draw(st.sampled_from(tables))
        op = draw(st.sampled_from(("<", "<=", ">", ">=", "=")))
        value = round(draw(st.floats(
            min_value=0, max_value=100, allow_nan=False,
        )), 3)
        filters.append(FilterPredicate("%s.c2" % table, op, value))
    return RankQuery(
        tables=tables, predicates=predicates, ranking=ranking, k=k,
        filters=filters,
    )


class TestRoundTripProperties:
    @given(query=rank_queries())
    @settings(max_examples=80, deadline=None)
    def test_rank_query_round_trip(self, query):
        assert_round_trip(query)

    @given(n_tables=st.integers(min_value=1, max_value=3),
           with_order=st.booleans())
    @settings(max_examples=20, deadline=None)
    def test_plain_query_round_trip(self, n_tables, with_order):
        tables = _TABLES[:n_tables]
        predicates = [
            JoinPredicate("%s.c2" % tables[i], "%s.c2" % tables[i + 1])
            for i in range(n_tables - 1)
        ]
        query = RankQuery(
            tables=tables, predicates=predicates,
            order_by="A.c1" if with_order else None,
        )
        assert_round_trip(query)
