"""Unit tests for the k* crossover solver and pruning decisions."""

import pytest

from repro.common.errors import EstimationError
from repro.cost.crossover import PruneDecision, decide_pruning, find_k_star
from repro.cost.model import CostModel
from repro.cost.plans import rank_join_plan_cost, sort_plan_cost


@pytest.fixture
def model():
    return CostModel()


class TestKStar:
    def test_crossover_exists(self, model):
        n, s = 10000, 1e-3
        k_star = find_k_star(model, n, n, s)
        assert k_star is not None and k_star > 0
        sort_cost = sort_plan_cost(model, n, n, s)
        assert rank_join_plan_cost(model, k_star, s, n, n) >= sort_cost
        assert rank_join_plan_cost(model, k_star - 1, s, n, n) < sort_cost

    def test_rank_always_cheaper(self, model):
        # Very high selectivity: tiny depths, sorting is massive.
        assert find_k_star(model, 10000, 10000, 0.5) is None

    def test_rank_never_cheaper(self, model):
        # Very low selectivity: depths clamp to full inputs with
        # expensive random I/O while the sort plan is trivial.
        assert find_k_star(model, 10000, 10000, 1e-6) == 0

    def test_paper_figure6_magnitude(self, model):
        """The paper reports k* = 176 for its example; our model's
        parameters land in the same order of magnitude."""
        k_star = find_k_star(model, 10000, 10000, 1e-3)
        assert 50 <= k_star <= 500


class TestPruneDecision:
    def test_prune_sort_case(self, model):
        decision = decide_pruning(model, 10000, 10000, 0.5, k_min=10)
        assert decision.action == PruneDecision.PRUNE_SORT
        assert decision.k_star is None

    def test_keep_both_crossover_case(self, model):
        decision = decide_pruning(model, 10000, 10000, 1e-3, k_min=10)
        assert decision.action == PruneDecision.KEEP_BOTH
        assert decision.k_star >= 10

    def test_prune_rank_join_when_blocking(self, model):
        decision = decide_pruning(
            model, 10000, 10000, 1e-6, k_min=10,
            rank_plan_pipelined=False,
        )
        assert decision.action == PruneDecision.PRUNE_RANK_JOIN

    def test_pipelining_protects_rank_join(self, model):
        """Section 3.3: a pipelined plan survives a cheaper blocking
        plan."""
        decision = decide_pruning(
            model, 10000, 10000, 1e-6, k_min=10,
            rank_plan_pipelined=True,
        )
        assert decision.action == PruneDecision.KEEP_BOTH

    def test_invalid_k_min(self, model):
        with pytest.raises(EstimationError):
            decide_pruning(model, 10, 10, 0.1, k_min=0)
