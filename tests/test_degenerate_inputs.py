"""Degenerate-input behaviour: ties, constants, singletons, extremes.

Threshold-based early-out logic is most fragile exactly where scores
stop being distinct; these tests pin the behaviour down.
"""

import math

import pytest

from repro.common.errors import DataError
from repro.common.rng import make_rng
from repro.executor.database import Database
from repro.operators.base import ScoreSpec, check_score
from repro.operators.hrjn import HRJN
from repro.operators.joins import HashJoin
from repro.operators.nrjn import NRJN
from repro.operators.scan import IndexScan, TableScan
from repro.operators.topk import Limit
from repro.storage.index import SortedIndex
from repro.storage.table import Table


def constant_score_table(name, n, key_domain=3, score=0.5, seed=0):
    rng = make_rng(seed)
    table = Table.from_columns(name, [("key", "int"), ("score", "float")])
    for _ in range(n):
        table.insert([int(rng.integers(0, key_domain)), score])
    table.create_index(SortedIndex(
        "%s_idx" % name, "%s.score" % name,
    ))
    return table


class TestAllTiedScores:
    def test_hrjn_emits_full_join_under_ties(self):
        left = constant_score_table("L", 30, seed=1)
        right = constant_score_table("R", 30, seed=2)
        rank_join = HRJN(
            IndexScan(left, left.get_index("L_idx")),
            IndexScan(right, right.get_index("R_idx")),
            "L.key", "R.key", "L.score", "R.score", name="RJ",
        )
        rank_rows = list(rank_join)
        join_rows = list(HashJoin(
            TableScan(left), TableScan(right), "L.key", "R.key",
        ))
        assert len(rank_rows) == len(join_rows)
        assert all(r["_score_RJ"] == 1.0 for r in rank_rows)

    def test_hrjn_topk_under_ties_returns_exactly_k(self):
        left = constant_score_table("L", 30, seed=3)
        right = constant_score_table("R", 30, seed=4)
        rank_join = HRJN(
            IndexScan(left, left.get_index("L_idx")),
            IndexScan(right, right.get_index("R_idx")),
            "L.key", "R.key", "L.score", "R.score", name="RJ",
        )
        assert len(list(Limit(rank_join, 7))) == 7

    def test_nrjn_under_ties(self):
        left = constant_score_table("L", 25, seed=5)
        right = constant_score_table("R", 25, seed=6)
        rank_join = NRJN(
            IndexScan(left, left.get_index("L_idx")),
            TableScan(right),
            "L.key", "R.key", "L.score", "R.score", name="NR",
        )
        rows = list(Limit(rank_join, 5))
        assert len(rows) == 5


class TestSingletons:
    def test_single_row_inputs(self):
        left = constant_score_table("L", 1, key_domain=1, seed=7)
        right = constant_score_table("R", 1, key_domain=1, seed=8)
        rank_join = HRJN(
            IndexScan(left, left.get_index("L_idx")),
            IndexScan(right, right.get_index("R_idx")),
            "L.key", "R.key", "L.score", "R.score", name="RJ",
        )
        rows = list(rank_join)
        assert len(rows) == 1
        assert rows[0]["_score_RJ"] == 1.0

    def test_single_table_single_row_query(self):
        db = Database()
        db.create_table("A", [("c1", "float")], rows=[[0.42]])
        db.analyze()
        report = db.execute(
            "SELECT A.c1 FROM A ORDER BY A.c1 DESC LIMIT 5",
        )
        assert len(report.rows) == 1


class TestExtremeScores:
    def test_zero_scores_everywhere(self):
        left = constant_score_table("L", 10, score=0.0, seed=9)
        right = constant_score_table("R", 10, score=0.0, seed=10)
        rank_join = HRJN(
            IndexScan(left, left.get_index("L_idx")),
            IndexScan(right, right.get_index("R_idx")),
            "L.key", "R.key", "L.score", "R.score", name="RJ",
        )
        rows = list(Limit(rank_join, 3))
        assert all(r["_score_RJ"] == 0.0 for r in rows)

    def test_negative_scores(self):
        """Scores may be negative; only descending order matters."""
        left = Table.from_columns("L", [("key", "int"), ("score", "float")])
        right = Table.from_columns("R", [("key", "int"), ("score", "float")])
        for i, score in enumerate((-0.1, -0.5, -0.9)):
            left.insert([i % 2, score])
            right.insert([i % 2, score])
        left.create_index(SortedIndex("L_idx", "L.score"))
        right.create_index(SortedIndex("R_idx", "R.score"))
        rank_join = HRJN(
            IndexScan(left, left.get_index("L_idx")),
            IndexScan(right, right.get_index("R_idx")),
            "L.key", "R.key", "L.score", "R.score", name="RJ",
        )
        scores = [r["_score_RJ"] for r in rank_join]
        assert scores == sorted(scores, reverse=True)
        assert scores[0] == pytest.approx(-0.2)

    def test_huge_k_on_tiny_join(self):
        db = Database()
        db.create_table("A", [("c1", "float"), ("c2", "int")],
                        rows=[[0.5, 1], [0.6, 2]])
        db.create_table("B", [("c1", "float"), ("c2", "int")],
                        rows=[[0.7, 1]])
        db.analyze()
        report = db.execute("""
            WITH R AS (
              SELECT A.c1 AS x, rank() OVER
                     (ORDER BY (A.c1 + B.c1)) AS rank
              FROM A, B WHERE A.c2 = B.c2)
            SELECT x, rank FROM R WHERE rank <= 99999""")
        assert len(report.rows) == 1


def table_with_score(name, scores, key=1):
    table = Table.from_columns(name, [("key", "int"), ("score", "float")])
    for score in scores:
        table.insert([key, score])
    table.create_index(SortedIndex("%s_idx" % name, "%s.score" % name))
    return table


class TestNonFiniteScores:
    """NaN/±inf scores are rejected with DataError at the boundary.

    NaN poisons every threshold comparison (all comparisons False) and
    ±inf pins the threshold, so both must fail the query at the
    offending row, not corrupt the top-k silently.
    """

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"),
                                     float("-inf")])
    def test_check_score_rejects_non_finite(self, bad):
        with pytest.raises(DataError):
            check_score(bad)

    @pytest.mark.parametrize("bad", [None, "0.5", [1.0]])
    def test_check_score_rejects_non_numbers(self, bad):
        with pytest.raises(DataError):
            check_score(bad)

    def test_check_score_passes_finite_values_through(self):
        assert check_score(0.25) == 0.25
        assert check_score(-3) == -3

    def test_checked_spec_wraps_accessor(self):
        spec = ScoreSpec("score", None).checked()
        assert spec({"score": 0.5}) == 0.5
        with pytest.raises(DataError) as excinfo:
            spec({"score": float("nan")})
        assert "score" in str(excinfo.value)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_hrjn_rejects_non_finite_left_score(self, bad):
        # SortedIndex orders by score, so a NaN row's position is
        # undefined -- but wherever it surfaces, the join must raise.
        left = table_with_score("L", [0.9, bad, 0.1])
        right = table_with_score("R", [0.8, 0.2])
        rank_join = HRJN(
            IndexScan(left, left.get_index("L_idx")),
            IndexScan(right, right.get_index("R_idx")),
            "L.key", "R.key", "L.score", "R.score", name="RJ",
        )
        with pytest.raises(DataError):
            list(rank_join)

    def test_nrjn_rejects_non_finite_inner_score(self):
        outer = table_with_score("L", [0.9, 0.1])
        inner = table_with_score("R", [0.8, float("-inf")])
        rank_join = NRJN(
            IndexScan(outer, outer.get_index("L_idx")),
            TableScan(inner),
            "L.key", "R.key", "L.score", "R.score", name="NR",
        )
        with pytest.raises(DataError):
            list(rank_join)

    def test_nan_detected_before_threshold_corruption(self):
        """The failure fires when the NaN row is observed, not after
        quietly mis-ranking rows -- no partial wrong output."""
        left = table_with_score("L", [math.nan, 0.9, 0.8])
        right = table_with_score("R", [0.7])
        rank_join = HRJN(
            IndexScan(left, left.get_index("L_idx")),
            IndexScan(right, right.get_index("R_idx")),
            "L.key", "R.key", "L.score", "R.score", name="RJ",
        )
        rank_join.open()
        try:
            with pytest.raises(DataError):
                while rank_join.next() is not None:
                    pass
        finally:
            rank_join.close()
