"""Columnar storage and vectorized-operator equivalence.

Three contracts:

* :class:`TypedColumn` / :class:`ColumnStore` type discipline -- exact
  typing with silent, value-preserving degradation to object columns;
* fused (columnar) Filter/Project batches are byte-identical to the
  row-at-a-time path for every tree shape and batch size, including
  with the numpy mask selector and over sorted (gather) streams;
* checkpoints taken mid-stream through vectorized operators restore
  into fresh trees and produce exactly the remaining rows.

The PR-pinned suites (``test_batch_execution``,
``test_checkpoint_roundtrip``, ``test_parallel_equivalence``) run the
same trees through the generic planes; this file targets the columnar
machinery itself.
"""

import pytest

from repro.common.rng import make_rng
from repro.operators.filters import Filter, Project
from repro.operators.hrjn import HRJN
from repro.operators.scan import IndexScan, TableScan
from repro.operators.topk import Limit
from repro.optimizer.query import FilterPredicate
from repro.storage.columns import (
    ColumnStore,
    TypedColumn,
    compile_mask_selector,
    compile_predicate_closure,
    compile_score_closure,
)
from repro.storage.index import SortedIndex
from repro.storage.table import Table

BATCH_SIZES = (1, 2, 3, 7, 64)


def ranked_table(name, n, key_domain=5, seed=0):
    rng = make_rng(seed)
    table = Table.from_columns(
        name, [("id", "int"), ("key", "int"), ("score", "float")],
        rows=[
            [i, int(rng.integers(0, key_domain)),
             float(rng.uniform(0, 1))]
            for i in range(n)
        ],
    )
    table.create_index(SortedIndex("%s_idx" % name, "%s.score" % name))
    return table


L = ranked_table("L", 60, seed=7)
R = ranked_table("R", 45, seed=8)

PRED_SCORE = (FilterPredicate("L.score", ">=", 0.4),)
PRED_BOTH = (
    FilterPredicate("L.score", ">=", 0.25),
    FilterPredicate("L.key", "<", 4),
)


def index_scan(table):
    return IndexScan(table, table.get_index("%s_idx" % table.name))


# ----------------------------------------------------------------------
# TypedColumn / ColumnStore
# ----------------------------------------------------------------------
class TestTypedColumn:
    def test_exact_int_stays_typed(self):
        col = TypedColumn("int")
        col.extend([1, 2, 3])
        col.append(4)
        assert col.kind == "int"
        assert list(col.data) == [1, 2, 3, 4]

    def test_bool_degrades_preserving_values(self):
        col = TypedColumn("int")
        col.extend([1, 2])
        col.append(True)
        assert col.kind == "object"
        assert list(col.data) == [1, 2, True]
        assert col.data[2] is True

    def test_float_column_rejects_int(self):
        col = TypedColumn("float")
        col.extend([0.5, 1.5])
        col.append(2)
        assert col.kind == "object"
        assert list(col.data) == [0.5, 1.5, 2]
        assert type(col.data[2]) is int

    def test_overflow_append_degrades(self):
        col = TypedColumn("int")
        col.append(1)
        col.append(2 ** 70)
        assert col.kind == "object"
        assert list(col.data) == [1, 2 ** 70]

    def test_overflow_extend_rolls_back_partial_tail(self):
        col = TypedColumn("int")
        col.extend([1, 2])
        # The wide int passes the type sweep (it *is* int) and trips
        # OverflowError inside array.extend; the partial tail must not
        # survive twice.
        col.extend([3, 2 ** 70, 4])
        assert col.kind == "object"
        assert list(col.data) == [1, 2, 3, 2 ** 70, 4]

    def test_string_schema_type_is_object(self):
        col = TypedColumn("str")
        col.extend(["a", "b"])
        assert col.kind == "object"

    def test_extend_from_degraded_source_degrades_target(self):
        src = TypedColumn("int")
        src.extend([1, 2])
        src.append(True)  # degrade the source
        dst = TypedColumn("int")
        dst.extend([9])
        dst.extend_from(src, [2, 0])
        assert dst.kind == "object"
        assert list(dst.data) == [9, True, 1]


class TestRowFacade:
    def test_bulk_load_equals_per_insert(self):
        rows = [[i, i % 3, float(i) / 10] for i in range(20)]
        spec = [("id", "int"), ("key", "int"), ("score", "float")]
        bulk = Table.from_columns("T", spec, rows=rows)
        serial = Table.from_columns("T", spec)
        for row in rows:
            serial.insert(row)
        assert bulk.rows() == serial.rows()
        assert len(bulk) == len(serial) == 20

    def test_bulk_load_bumps_version_once(self):
        table = Table.from_columns("T", [("a", "int")])
        before = table.version
        table.extend([[i] for i in range(50)])
        assert table.version == before + 1

    def test_insert_after_rows_keeps_facade_live(self):
        table = Table.from_columns("T", [("a", "int")])
        table.insert([1])
        live = table.rows()
        table.insert([2])
        assert [row["T.a"] for row in live] == [1, 2]
        assert table.rows() is live

    def test_column_exposes_raw_buffer(self):
        store = L.column_store()
        assert list(L.column("L.id")) == list(range(60))
        assert store.column_kinds()["L.score"] == "float"

    def test_row_at_matches_rows(self):
        store = L.column_store()
        assert store.row_at(17) == L.rows()[17]
        assert store.build_rows(5, 9) == L.rows()[5:9]


# ----------------------------------------------------------------------
# Compiled closures
# ----------------------------------------------------------------------
class TestCompiledClosures:
    def test_score_closure_matches_rows(self):
        store = L.column_store()
        columns = {name: col.data for name, col
                   in zip(store.names, store.columns)}
        closure = compile_score_closure(
            [("L.score", 0.3), ("L.key", 0.7)], columns,
        )
        import math
        for position, row in enumerate(L.rows()):
            expected = math.fsum(
                (0.3 * row["L.score"], 0.7 * row["L.key"]),
            )
            assert closure(position) == expected

    def test_predicate_closure_matches_rows(self):
        store = L.column_store()
        columns = {name: col.data for name, col
                   in zip(store.names, store.columns)}
        closure = compile_predicate_closure(PRED_BOTH, columns)
        for position, row in enumerate(L.rows()):
            expected = row["L.score"] >= 0.25 and row["L.key"] < 4
            assert closure(position) == expected

    def test_predicate_closure_missing_column_is_none(self):
        assert compile_predicate_closure(PRED_SCORE, {}) is None

    def test_mask_selector_matches_closure(self):
        pytest.importorskip("numpy")
        store = L.column_store()
        columns = {name: col.data for name, col
                   in zip(store.names, store.columns)}
        selector = compile_mask_selector(PRED_BOTH, columns)
        assert selector is not None
        closure = compile_predicate_closure(PRED_BOTH, columns)
        expected = [p for p in range(len(L)) if closure(p)]
        assert selector(0, len(L)) == expected
        assert selector(10, 40) == [p for p in expected
                                    if 10 <= p < 40]

    def test_mask_selector_refuses_inexact_comparison(self):
        pytest.importorskip("numpy")
        store = L.column_store()
        columns = {name: col.data for name, col
                   in zip(store.names, store.columns)}
        # int column compared to a float constant: numpy would cast the
        # int64 side to float64, which is not always exact.
        preds = (FilterPredicate("L.key", "<", 2.5),)
        assert compile_mask_selector(preds, columns) is None


# ----------------------------------------------------------------------
# Fused vs row-at-a-time equivalence
# ----------------------------------------------------------------------
def _conjunction(predicates):
    return lambda row, _p=predicates: all(p.matches(row) for p in _p)


def fused_filter(scan_factory, predicates):
    """Filter carrying structured predicates: fusion-eligible."""
    return Filter(scan_factory(), _conjunction(predicates),
                  description="preds", predicates=predicates)


def row_filter(scan_factory, predicates):
    """Same selection without structured predicates: row path only."""
    return Filter(scan_factory(), _conjunction(predicates),
                  description="preds")


SHAPES = {
    "filter_heap": (PRED_SCORE, lambda: TableScan(L)),
    "filter_heap_conj": (PRED_BOTH, lambda: TableScan(L)),
    "filter_sorted": (PRED_SCORE, lambda: index_scan(L)),
    "filter_sorted_conj": (PRED_BOTH, lambda: index_scan(L)),
}


def drain_batches(operator, n):
    operator.open()
    try:
        rows = []
        while True:
            batch = operator.next_batch(n)
            rows.extend(batch)
            if len(batch) < n:
                return rows
    finally:
        operator.close()


def drain_rows(operator):
    return list(operator)


class TestFusedEquivalence:
    @pytest.mark.parametrize("shape", sorted(SHAPES))
    @pytest.mark.parametrize("batch", BATCH_SIZES)
    def test_filter_fused_matches_row_path(self, shape, batch):
        predicates, scan_factory = SHAPES[shape]
        expected = drain_rows(row_filter(scan_factory, predicates))
        fused = drain_batches(
            fused_filter(scan_factory, predicates), batch,
        )
        assert fused == expected

    @pytest.mark.parametrize("shape", sorted(SHAPES))
    def test_filter_fused_stats_match_row_path(self, shape):
        predicates, scan_factory = SHAPES[shape]
        row_op = row_filter(scan_factory, predicates)
        drain_batches(row_op, 7)
        fused_op = fused_filter(scan_factory, predicates)
        drain_batches(fused_op, 7)
        assert (fused_op.stats.pulled == row_op.stats.pulled)
        assert (fused_op.children[0].stats.rows_out
                == row_op.children[0].stats.rows_out)

    @pytest.mark.parametrize("batch", BATCH_SIZES)
    def test_project_fused_matches_row_path(self, batch):
        expected = [row.project(("L.id", "L.score"))
                    for row in TableScan(L)]
        fused = drain_batches(
            Project(TableScan(L), ("L.id", "L.score")), batch,
        )
        assert fused == expected

    @pytest.mark.parametrize("batch", BATCH_SIZES)
    def test_project_over_sorted_matches_row_path(self, batch):
        expected = [row.project(("L.id",)) for row in index_scan(L)]
        assert drain_batches(
            Project(index_scan(L), ("L.id",)), batch,
        ) == expected

    def test_filter_feeding_hrjn_matches_serial(self):
        def build(predicates):
            left = Filter(
                index_scan(L),
                lambda row: row["L.score"] >= 0.25,
                predicates=predicates,
            )
            return Limit(HRJN(
                left, index_scan(R), "L.key", "R.key",
                "L.score", "R.score", name="RJ",
            ), 12)

        plain = drain_rows(
            build(None)
        )
        fused = drain_batches(
            build((FilterPredicate("L.score", ">=", 0.25),)), 5,
        )
        assert fused == plain

    def test_tracer_disables_fusion_without_changing_rows(self):
        from repro.observability import Telemetry

        telemetry = Telemetry()
        traced = fused_filter(lambda: TableScan(L), PRED_BOTH)
        telemetry.instrument(traced)
        expected = drain_rows(row_filter(lambda: TableScan(L),
                                         PRED_BOTH))
        assert drain_batches(traced, 7) == expected


# ----------------------------------------------------------------------
# Observability
# ----------------------------------------------------------------------
class TestColumnarMetrics:
    def test_fused_counters_recorded_on_batch_drain(self):
        from repro.executor.database import Database

        rng = make_rng(5)
        db = Database()
        db.create_table("A", [("c1", "float"), ("c2", "int")], rows=[
            [float(rng.uniform(0, 1)), int(rng.integers(0, 50))]
            for _ in range(200)
        ])
        db.analyze()
        report = db.execute(
            "SELECT A.c1, A.c2 FROM A WHERE A.c1 >= 0.5",
            batch_size=64,
        )
        rows = db.metrics.get("columnar_fused_rows_total")
        assert rows is not None
        assert sum(v for _l, v in rows.samples()) == len(report.rows)
        assert db.metrics.get("columnar_fused_batches_total") is not None


# ----------------------------------------------------------------------
# Checkpoints through vectorized operators
# ----------------------------------------------------------------------
CHECKPOINT_FACTORIES = {
    "fused_filter": lambda: fused_filter(lambda: TableScan(L),
                                         PRED_BOTH),
    "fused_filter_sorted": lambda: fused_filter(lambda: index_scan(L),
                                                PRED_SCORE),
    "fused_project": lambda: Project(TableScan(L),
                                     ("L.id", "L.score")),
    "fused_filter_hrjn": lambda: Limit(HRJN(
        fused_filter(lambda: index_scan(L), PRED_SCORE),
        index_scan(R), "L.key", "R.key", "L.score", "R.score",
        name="RJ"), 10),
}


class TestVectorizedCheckpoints:
    @pytest.mark.parametrize("kind", sorted(CHECKPOINT_FACTORIES))
    @pytest.mark.parametrize("batch", (1, 3, 7))
    def test_roundtrip_mid_batch(self, kind, batch):
        factory = CHECKPOINT_FACTORIES[kind]
        expected = drain_batches(factory(), batch)
        assert expected
        for j in (0, 1, len(expected) // 2, len(expected)):
            original = factory()
            original.open()
            try:
                prefix = []
                while len(prefix) < j:
                    got = original.next_batch(
                        min(batch, j - len(prefix)),
                    )
                    prefix.extend(got)
                    if not got:
                        break
                assert prefix == expected[:j]
                state = original.state_dict()
            finally:
                original.close()
            restored = factory()
            restored.load_state_dict(state)
            try:
                rest = []
                while True:
                    got = restored.next_batch(batch)
                    rest.extend(got)
                    if len(got) < batch:
                        break
                assert rest == expected[j:], (
                    "restored %s diverged after %d rows" % (kind, j)
                )
            finally:
                restored.close()
