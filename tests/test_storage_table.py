"""Unit tests for heap tables."""

import pytest

from repro.common.errors import CatalogError, SchemaError
from repro.common.types import Column, Row, Schema
from repro.storage.index import SortedIndex
from repro.storage.table import Table


def make_table():
    return Table.from_columns("T", [("id", "int"), ("score", "float")])


class TestConstruction:
    def test_from_columns(self):
        table = make_table()
        assert table.schema.qualified_names() == ("T.id", "T.score")

    def test_initial_rows(self):
        table = Table.from_columns(
            "T", [("id", "int")], rows=[[1], [2]],
        )
        assert table.cardinality == 2

    def test_foreign_column_rejected(self):
        schema = Schema([Column("c1", table="OTHER")])
        with pytest.raises(SchemaError, match="does not belong"):
            Table("T", schema)

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Table.from_columns("", [("id", "int")])


class TestInsert:
    def test_sequence_insert(self):
        table = make_table()
        table.insert([1, 0.5])
        assert next(table.scan())["T.score"] == 0.5

    def test_dict_insert_bare_names(self):
        table = make_table()
        table.insert({"id": 1, "score": 0.5})
        assert next(table.scan())["T.id"] == 1

    def test_dict_insert_qualified(self):
        table = make_table()
        table.insert({"T.id": 1, "T.score": 0.5})
        assert table.cardinality == 1

    def test_row_insert(self):
        table = make_table()
        table.insert(Row({"T.id": 1, "T.score": 0.25}))
        assert next(table.scan())["T.score"] == 0.25

    def test_wrong_arity_rejected(self):
        with pytest.raises(SchemaError, match="expected 2 values"):
            make_table().insert([1])

    def test_missing_column_rejected(self):
        with pytest.raises(SchemaError, match="missing column"):
            make_table().insert({"id": 1})


class TestIndexes:
    def test_create_and_get(self):
        table = make_table()
        table.create_index(SortedIndex("by_score", "T.score"))
        assert table.get_index("by_score").name == "by_score"

    def test_duplicate_index_rejected(self):
        table = make_table()
        table.create_index(SortedIndex("by_score", "T.score"))
        with pytest.raises(CatalogError, match="already exists"):
            table.create_index(SortedIndex("by_score", "T.score"))

    def test_unknown_index(self):
        with pytest.raises(CatalogError, match="no index"):
            make_table().get_index("nope")

    def test_find_index_on(self):
        table = make_table()
        index = SortedIndex("by_score", "T.score")
        table.create_index(index)
        assert table.find_index_on("T.score") is index
        assert table.find_index_on("T.id") is None

    def test_insert_marks_index_stale(self):
        table = make_table()
        table.insert([1, 0.1])
        index = SortedIndex("by_score", "T.score")
        table.create_index(index)
        assert index.top()[0] == 0.1
        table.insert([2, 0.9])
        assert index.top()[0] == 0.9
