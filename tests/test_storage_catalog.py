"""Unit tests for the catalog."""

import pytest

from repro.common.errors import CatalogError
from repro.storage.catalog import Catalog
from repro.storage.table import Table


def make_catalog():
    catalog = Catalog()
    for name in ("L", "R"):
        table = Table.from_columns(name, [("k", "int")])
        for i in range(10):
            table.insert([i % 5])
        catalog.register(table)
    return catalog


class TestRegistration:
    def test_register_and_lookup(self):
        catalog = make_catalog()
        assert catalog.table("L").name == "L"
        assert "L" in catalog
        assert "X" not in catalog

    def test_duplicate_rejected(self):
        catalog = make_catalog()
        with pytest.raises(CatalogError, match="already registered"):
            catalog.register(Table.from_columns("L", [("k", "int")]))

    def test_unknown_table(self):
        with pytest.raises(CatalogError, match="unknown table"):
            make_catalog().table("X")

    def test_tables_copy(self):
        catalog = make_catalog()
        tables = catalog.tables()
        tables.clear()
        assert "L" in catalog


class TestStats:
    def test_lazy_stats(self):
        catalog = make_catalog()
        assert catalog.stats("L").cardinality == 10

    def test_analyze_all(self):
        catalog = make_catalog()
        catalog.analyze()
        assert catalog.stats("R").column("R.k").distinct == 5

    def test_analyze_one(self):
        catalog = make_catalog()
        stats = catalog.analyze("L")
        assert stats.cardinality == 10


class TestSelectivity:
    def test_estimated(self):
        catalog = make_catalog()
        assert catalog.join_selectivity("L", "L.k", "R", "R.k") == (
            pytest.approx(1 / 5)
        )

    def test_override_wins(self):
        catalog = make_catalog()
        catalog.set_join_selectivity("L.k", "R.k", 0.42)
        assert catalog.join_selectivity("L", "L.k", "R", "R.k") == 0.42
        # Symmetric lookup.
        assert catalog.join_selectivity("R", "R.k", "L", "L.k") == 0.42

    def test_override_range_checked(self):
        with pytest.raises(CatalogError):
            make_catalog().set_join_selectivity("L.k", "R.k", 1.5)
