"""Unit tests for Algorithm Propagate (Figure 8)."""

import pytest

from repro.common.errors import EstimationError
from repro.estimation.propagate import (
    EstimationLeaf,
    EstimationNode,
    collect_estimates,
    propagate,
)


def two_level_tree(n=1000, s1=0.01, s2=0.01):
    """((T0 join T1) join T2) with selectivities s1 (inner), s2 (outer)."""
    inner = EstimationNode(
        EstimationLeaf(n, "T0"), EstimationLeaf(n, "T1"), s1, name="inner",
    )
    return EstimationNode(inner, EstimationLeaf(n, "T2"), s2, name="outer")


class TestTreeStructure:
    def test_leaf_counts(self):
        tree = two_level_tree()
        assert tree.leaf_count == 3
        assert tree.left.leaf_count == 2

    def test_output_cardinality(self):
        tree = two_level_tree(n=100, s1=0.1, s2=0.01)
        assert tree.left.output_cardinality() == pytest.approx(1000.0)
        assert tree.output_cardinality() == pytest.approx(1000.0)

    def test_leaves_enumeration(self):
        tree = two_level_tree()
        assert [leaf.name for leaf in tree.leaves()] == ["T0", "T1", "T2"]

    def test_invalid_selectivity(self):
        with pytest.raises(EstimationError):
            EstimationNode(EstimationLeaf(10), EstimationLeaf(10), 0.0)

    def test_invalid_leaf(self):
        with pytest.raises(EstimationError):
            EstimationLeaf(0)


class TestPropagation:
    def test_root_required_k(self):
        tree = propagate(two_level_tree(), 100)
        assert tree.required_k == 100.0

    def test_child_k_equals_parent_depth(self):
        """Figure 4 semantics: the child's k is the parent's depth."""
        tree = propagate(two_level_tree(), 100)
        assert tree.left.required_k == pytest.approx(tree.estimate.d_left)

    def test_leaf_required_k_set(self):
        tree = propagate(two_level_tree(), 50)
        assert tree.left.left.required_k is not None
        assert tree.right.required_k == pytest.approx(
            tree.estimate.d_right,
        )

    def test_depths_grow_down_the_pipeline(self):
        """Deeper operators need more input than the root k (Figure 4:
        100 -> 580 -> 783)."""
        tree = propagate(two_level_tree(), 100)
        assert tree.estimate.d_left > 100
        assert tree.left.estimate.d_left > tree.left.required_k

    def test_clamping_at_output_cardinality(self):
        tree = two_level_tree(n=50, s1=0.02, s2=0.02)
        propagate(tree, 10 ** 6)
        assert tree.required_k <= tree.output_cardinality()
        assert tree.estimate.d_left <= tree.left.output_cardinality()

    def test_modes_ordering(self):
        trees = {}
        for mode in ("any", "average", "worst"):
            tree = propagate(two_level_tree(), 100, mode=mode)
            trees[mode] = tree.estimate.d_left
        assert trees["any"] <= trees["average"] <= trees["worst"] + 1e-9

    def test_leaf_only_tree(self):
        leaf = propagate(EstimationLeaf(100, "T"), 5)
        assert leaf.required_k == 5.0

    def test_invalid_inputs(self):
        with pytest.raises(EstimationError):
            propagate(two_level_tree(), 0)
        with pytest.raises(EstimationError):
            propagate(two_level_tree(), 10, mode="bogus")


class TestCollect:
    def test_preorder_records(self):
        tree = propagate(two_level_tree(), 25)
        records = collect_estimates(tree)
        names = [name for name, _k, _est in records]
        assert names == ["outer", "inner", "T0", "T1", "T2"]
        assert records[0][2] is tree.estimate
        assert records[2][2] is None  # Leaves carry no estimate.

    def test_stream_aware_differs_from_paper_mode(self):
        """With non-key-join selectivity the intermediate stream is
        denser than n, so stream-aware estimates diverge from the
        original formulas."""
        aware = propagate(two_level_tree(s1=0.05, s2=0.05), 50,
                          stream_aware=True)
        paper = propagate(two_level_tree(s1=0.05, s2=0.05), 50,
                          stream_aware=False)
        assert aware.estimate.d_left != pytest.approx(
            paper.estimate.d_left,
        )

    def test_key_join_modes_agree(self):
        """For s = 1/n every intermediate stream has n tuples and the
        paper formulas are exact: both modes coincide."""
        n = 1000
        aware = propagate(two_level_tree(n=n, s1=1 / n, s2=1 / n), 50,
                          stream_aware=True)
        paper = propagate(two_level_tree(n=n, s1=1 / n, s2=1 / n), 50,
                          stream_aware=False)
        assert aware.estimate.d_left == pytest.approx(
            paper.estimate.d_left,
        )
