"""Unit tests for the rank-aggregation substrate (FA / TA / NRA / Borda)."""

import pytest

from repro.common.errors import ExecutionError
from repro.common.rng import make_rng
from repro.common.scoring import MinScore
from repro.ranking import (
    RankedList,
    borda,
    fagin_fa,
    nra,
    threshold_algorithm,
)


def make_lists(n=150, m=3, seed=0):
    rng = make_rng(seed)
    ids = list(range(n))
    lists = []
    totals = {i: 0.0 for i in ids}
    for j in range(m):
        scores = rng.uniform(0, 1, n)
        for i in ids:
            totals[i] += scores[i]
        lists.append(RankedList("L%d" % j, zip(ids, scores)))
    truth = [i for i, _s in sorted(
        totals.items(), key=lambda item: (-item[1], item[0]),
    )]
    return lists, truth


class TestRankedList:
    def test_sorted_access_order(self):
        ranked = RankedList("L", [(1, 0.2), (2, 0.9), (3, 0.5)])
        assert ranked.sorted_access(0) == (2, 0.9)
        assert ranked.sorted_access(2) == (1, 0.2)
        assert ranked.sorted_access(3) is None

    def test_random_access(self):
        ranked = RankedList("L", [(1, 0.2)])
        assert ranked.random_access(1) == 0.2
        assert ranked.stats.random_accesses == 1

    def test_random_access_unknown(self):
        ranked = RankedList("L", [(1, 0.2)])
        with pytest.raises(ExecutionError):
            ranked.random_access(99)

    def test_duplicate_object_rejected(self):
        with pytest.raises(ExecutionError, match="duplicate"):
            RankedList("L", [(1, 0.2), (1, 0.3)])

    def test_access_counting_and_reset(self):
        ranked = RankedList("L", [(1, 0.2), (2, 0.4)])
        ranked.sorted_access(0)
        ranked.random_access(1)
        assert ranked.stats.total == 2
        ranked.reset_stats()
        assert ranked.stats.total == 0

    def test_from_table(self, small_table):
        ranked = RankedList.from_table(small_table, "T.id", "T.score")
        assert len(ranked) == 10
        assert ranked.sorted_access(0)[1] == 0.9


@pytest.mark.parametrize("algorithm", [fagin_fa, threshold_algorithm, nra],
                         ids=["FA", "TA", "NRA"])
class TestAlgorithmCorrectness:
    def test_top_k_ids(self, algorithm):
        lists, truth = make_lists(seed=1)
        result = algorithm(lists, 10)
        assert [oid for oid, _ in result] == truth[:10]

    def test_k_equals_n(self, algorithm):
        lists, truth = make_lists(n=20, seed=2)
        result = algorithm(lists, 20)
        assert [oid for oid, _ in result] == truth

    def test_k_one(self, algorithm):
        lists, truth = make_lists(seed=3)
        result = algorithm(lists, 1)
        assert result[0][0] == truth[0]

    def test_invalid_k(self, algorithm):
        lists, _truth = make_lists(n=10, seed=4)
        with pytest.raises(ValueError):
            algorithm(lists, 0)
        with pytest.raises(ValueError):
            algorithm(lists, 11)

    def test_mismatched_objects_rejected(self, algorithm):
        lists = [
            RankedList("L0", [(1, 0.5), (2, 0.3)]),
            RankedList("L1", [(1, 0.5), (3, 0.3)]),
        ]
        with pytest.raises(ExecutionError, match="different object sets"):
            algorithm(lists, 1)


class TestAccessBehaviour:
    def test_nra_uses_no_random_access(self):
        lists, _truth = make_lists(seed=5)
        nra(lists, 5)
        assert all(l.stats.random_accesses == 0 for l in lists)

    def test_ta_stops_early(self):
        lists, _truth = make_lists(n=500, seed=6)
        threshold_algorithm(lists, 5)
        sorted_accesses = sum(l.stats.sorted_accesses for l in lists)
        assert sorted_accesses < 3 * 500  # Far from exhausting.

    def test_min_combiner(self):
        lists, _truth = make_lists(n=50, seed=7)
        result = threshold_algorithm(lists, 5, combiner=MinScore())
        # Recompute truth under min.
        mins = {}
        for i in range(50):
            mins[i] = min(l.random_access(i) for l in lists)
        truth = sorted(mins, key=lambda i: (-mins[i], i))[:5]
        assert [oid for oid, _ in result] == truth


class TestBorda:
    def test_full_ranking_length(self):
        lists, _truth = make_lists(n=30, seed=8)
        assert len(borda(lists)) == 30

    def test_k_cutoff(self):
        lists, _truth = make_lists(n=30, seed=9)
        assert len(borda(lists, 5)) == 5

    def test_points_bounds(self):
        lists, _truth = make_lists(n=10, m=2, seed=10)
        ranking = borda(lists)
        top_points = ranking[0][1]
        assert 0 <= top_points <= 2 * 9

    def test_single_list_matches_its_order(self):
        ranked = RankedList("L", [(1, 0.1), (2, 0.8), (3, 0.4)])
        assert [oid for oid, _ in borda([ranked])] == [2, 3, 1]
