"""Unit tests for physical plan properties."""

import pytest

from repro.common.errors import OptimizerError
from repro.optimizer.expressions import ScoreExpression
from repro.optimizer.properties import OrderProperty, properties_cover


class TestOrderProperty:
    def test_none_property(self):
        dc = OrderProperty.none()
        assert dc.is_none
        assert dc.describe() == "DC"
        assert dc.key() == ()

    def test_column_order(self):
        order = OrderProperty.on("A.c1")
        assert not order.is_none
        assert not order.is_expression

    def test_expression_order(self):
        order = OrderProperty.on(
            ScoreExpression({"A.c1": 0.3, "B.c1": 0.3}),
        )
        assert order.is_expression

    def test_invalid_expression(self):
        with pytest.raises(OptimizerError):
            OrderProperty(42)

    def test_any_order_covers_dc(self):
        assert OrderProperty.on("A.c1").covers(OrderProperty.none())
        assert OrderProperty.none().covers(OrderProperty.none())

    def test_dc_does_not_cover_order(self):
        assert not OrderProperty.none().covers(OrderProperty.on("A.c1"))

    def test_equal_orders_cover(self):
        a = OrderProperty.on(ScoreExpression({"A.c1": 0.3, "B.c1": 0.3}))
        b = OrderProperty.on(ScoreExpression({"A.c1": 1.0, "B.c1": 1.0}))
        assert a.covers(b) and b.covers(a)
        assert a == b

    def test_different_orders_do_not_cover(self):
        assert not OrderProperty.on("A.c1").covers(
            OrderProperty.on("A.c2"),
        )


class TestPropertyVectors:
    def test_pipelined_plan_protected(self):
        """A blocking plan never covers a pipelined plan."""
        dc = OrderProperty.none()
        assert not properties_cover(dc, False, dc, True)
        assert properties_cover(dc, True, dc, False)
        assert properties_cover(dc, True, dc, True)

    def test_order_and_pipelining_both_required(self):
        order = OrderProperty.on("A.c1")
        dc = OrderProperty.none()
        assert properties_cover(order, True, dc, False)
        assert not properties_cover(dc, True, order, False)
